/**
 * @file
 * Tests for the fault-injection subsystem: the seeded fault model,
 * disk-level error injection, state-machine edge cases, the kernel's
 * retry/backoff driver with its ErrorRecovery service, and the
 * structured RunResult surfaced by System::run.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/experiment.hh"
#include "core/system.hh"
#include "disk/disk.hh"
#include "disk/fault_model.hh"
#include "sim/logging.hh"

using namespace softwatt;

namespace
{

constexpr double freqHz = 200e6;
constexpr double timeScale = 100.0;

/** Ticks for a paper-equivalent number of seconds. */
Tick
equivSeconds(double s)
{
    return Tick(s / timeScale * freqHz);
}

struct Fixture
{
    EventQueue queue;

    Disk
    make(DiskConfig cfg)
    {
        return Disk(queue, freqHz, cfg, timeScale, 1234);
    }
};

DiskFaultConfig
faultsWith(double transient, double seek = 0, double spinup = 0)
{
    DiskFaultConfig f;
    f.enabled = true;
    f.transientErrorRate = transient;
    f.seekErrorRate = seek;
    f.spinupFailureRate = spinup;
    return f;
}

/** A small but complete benchmark run. */
BenchmarkRun
tinyRun(Benchmark b, SystemConfig config = SystemConfig{},
        double scale = 0.03)
{
    config.sampleWindow = 20'000;
    return runBenchmark(b, config, scale);
}

/** Fatal()/panic() throw SimError inside these tests. */
class ThrowingErrors : public ::testing::Test
{
  protected:
    void SetUp() override { setErrorHandler(throwingErrorHandler); }
    void TearDown() override { setErrorHandler(nullptr); }
};

} // namespace

// ---------------------------------------------------------------------
// Fault model unit tests.
// ---------------------------------------------------------------------

TEST(FaultModel, DisabledNeverInjects)
{
    DiskFaultConfig cfg = faultsWith(1.0, 1.0, 1.0);
    cfg.enabled = false;
    DiskFaultModel model(cfg);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(model.injectTransientError(1.0));
        EXPECT_FALSE(model.injectSeekError(1.0));
        EXPECT_FALSE(model.injectSpinupFailure(1.0));
    }
    EXPECT_EQ(model.totalInjected(), 0u);
}

TEST(FaultModel, RateOneAlwaysInjects)
{
    DiskFaultModel model(faultsWith(1.0, 1.0, 1.0));
    for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(model.injectTransientError(0.5));
        EXPECT_TRUE(model.injectSeekError(0.5));
        EXPECT_TRUE(model.injectSpinupFailure(0.5));
    }
    EXPECT_EQ(model.transientErrors(), 50u);
    EXPECT_EQ(model.seekErrors(), 50u);
    EXPECT_EQ(model.spinupFailures(), 50u);
    EXPECT_EQ(model.totalInjected(), 150u);
}

TEST(FaultModel, SameSeedSameDecisions)
{
    DiskFaultConfig cfg = faultsWith(0.5);
    DiskFaultModel a(cfg), b(cfg);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.injectTransientError(1.0),
                  b.injectTransientError(1.0));
    }
    EXPECT_EQ(a.transientErrors(), b.transientErrors());
}

TEST(FaultModel, RateHalfInjectsRoughlyHalf)
{
    DiskFaultModel model(faultsWith(0.5));
    for (int i = 0; i < 10'000; ++i)
        (void)model.injectTransientError(1.0);
    EXPECT_GT(model.transientErrors(), 4'500u);
    EXPECT_LT(model.transientErrors(), 5'500u);
}

TEST(FaultModel, WindowGatesInjection)
{
    DiskFaultConfig cfg = faultsWith(1.0);
    cfg.windowStartSeconds = 2.0;
    cfg.windowEndSeconds = 4.0;
    DiskFaultModel model(cfg);
    EXPECT_FALSE(model.injectTransientError(1.9));
    EXPECT_TRUE(model.injectTransientError(2.0));
    EXPECT_TRUE(model.injectTransientError(3.9));
    EXPECT_FALSE(model.injectTransientError(4.0));
    EXPECT_EQ(model.transientErrors(), 2u);
}

TEST_F(ThrowingErrors, FaultConfigRejectsBadValues)
{
    DiskFaultConfig bad_rate = faultsWith(1.5);
    EXPECT_THROW(bad_rate.validate("test"), SimError);

    DiskFaultConfig negative = faultsWith(0.1);
    negative.seekErrorRate = -0.2;
    EXPECT_THROW(negative.validate("test"), SimError);

    DiskFaultConfig inverted = faultsWith(0.1);
    inverted.windowStartSeconds = 5.0;
    inverted.windowEndSeconds = 1.0;
    EXPECT_THROW(inverted.validate("test"), SimError);
}

TEST_F(ThrowingErrors, RetryPolicyRejectsBadValues)
{
    Kernel::DiskRetryPolicy p;
    p.maxAttempts = 0;
    EXPECT_THROW(p.validate("test"), SimError);

    p = Kernel::DiskRetryPolicy{};
    p.backoffSeconds = 0;
    EXPECT_THROW(p.validate("test"), SimError);

    p = Kernel::DiskRetryPolicy{};
    p.backoffMultiplier = 0.5;
    EXPECT_THROW(p.validate("test"), SimError);
}

// ---------------------------------------------------------------------
// Disk-level injection.
// ---------------------------------------------------------------------

TEST(DiskFaults, TransientErrorFailsRequestAndDiskRecovers)
{
    Fixture f;
    DiskConfig cfg = DiskConfig::idleOnly();
    cfg.fault = faultsWith(1.0);
    Disk disk = f.make(cfg);

    DiskIoStatus got = DiskIoStatus::Ok;
    int completions = 0;
    disk.submit(100, 2, [&](DiskIoStatus s) {
        got = s;
        ++completions;
    });
    f.queue.advanceTo(equivSeconds(1.0));

    EXPECT_EQ(completions, 1);
    EXPECT_EQ(got, DiskIoStatus::TransientError);
    EXPECT_EQ(disk.requestsFailed(), 1u);
    EXPECT_EQ(disk.requestsServed(), 0u);
    EXPECT_EQ(disk.faults().transientErrors(), 1u);
    EXPECT_EQ(disk.state(), DiskState::Idle);
    EXPECT_TRUE(disk.quiescent());
    // The failed attempt still paid seek + transfer residency.
    EXPECT_GT(disk.stateSeconds(DiskState::Seeking), 0.0);
    EXPECT_GT(disk.stateSeconds(DiskState::Active), 0.0);
}

TEST(DiskFaults, SeekErrorSkipsTransferPhase)
{
    Fixture f;
    DiskConfig cfg = DiskConfig::idleOnly();
    cfg.fault = faultsWith(0, 1.0);
    Disk disk = f.make(cfg);

    DiskIoStatus got = DiskIoStatus::Ok;
    disk.submit(5000, 4, [&](DiskIoStatus s) { got = s; });
    f.queue.advanceTo(equivSeconds(1.0));

    EXPECT_EQ(got, DiskIoStatus::SeekError);
    EXPECT_EQ(disk.requestsFailed(), 1u);
    EXPECT_EQ(disk.faults().seekErrors(), 1u);
    // The seek was spent; the transfer never started.
    EXPECT_GT(disk.stateSeconds(DiskState::Seeking), 0.0);
    EXPECT_DOUBLE_EQ(disk.stateSeconds(DiskState::Active), 0.0);
}

TEST(DiskFaults, SpinupFailureChargesFullSpinupEnergy)
{
    Fixture f;
    DiskConfig cfg = DiskConfig::spindown(0.5);
    cfg.fault = faultsWith(0, 0, 1.0);
    Disk disk = f.make(cfg);

    // One clean request (no spin-up involved, so no fault draw),
    // then 0.5 s idle, 5 s spinning down, STANDBY.
    disk.submit(50, 1, [](DiskIoStatus) {});
    f.queue.advanceTo(equivSeconds(7.0));
    ASSERT_EQ(disk.state(), DiskState::Standby);

    DiskIoStatus got = DiskIoStatus::Ok;
    disk.submit(100, 1, [&](DiskIoStatus s) { got = s; });
    f.queue.advanceTo(equivSeconds(14.0));

    EXPECT_EQ(got, DiskIoStatus::SpinupFailure);
    EXPECT_EQ(disk.spinUps(), 1u);
    EXPECT_EQ(disk.requestsFailed(), 1u);
    EXPECT_EQ(disk.state(), DiskState::Standby);
    // The failed spin-up still spent 5 s at 4.2 W.
    EXPECT_NEAR(disk.stateSeconds(DiskState::SpinningUp), 5.0, 0.01);
    EXPECT_GT(disk.energyJ(), 21.0);
}

TEST(DiskFaults, WindowBeyondRunNeverFires)
{
    Fixture f;
    DiskConfig cfg = DiskConfig::idleOnly();
    cfg.fault = faultsWith(1.0, 1.0, 1.0);
    cfg.fault.windowStartSeconds = 1000.0;
    Disk disk = f.make(cfg);

    DiskIoStatus got = DiskIoStatus::TransientError;
    disk.submit(100, 1, [&](DiskIoStatus s) { got = s; });
    f.queue.advanceTo(equivSeconds(1.0));

    EXPECT_EQ(got, DiskIoStatus::Ok);
    EXPECT_EQ(disk.requestsServed(), 1u);
    EXPECT_EQ(disk.requestsFailed(), 0u);
    EXPECT_EQ(disk.faults().totalInjected(), 0u);
}

TEST(DiskFaults, FaultRunsAreDeterministic)
{
    auto run = [] {
        Fixture f;
        DiskConfig cfg = DiskConfig::idleOnly();
        cfg.fault = faultsWith(0.5, 0.2);
        Disk disk = f.make(cfg);
        std::vector<DiskIoStatus> statuses;
        for (int i = 0; i < 20; ++i)
            disk.submit(100 * i, 1, [&](DiskIoStatus s) {
                statuses.push_back(s);
            });
        f.queue.advanceTo(equivSeconds(10.0));
        return std::make_pair(statuses, disk.energyJ());
    };
    auto a = run();
    auto b = run();
    EXPECT_EQ(a.first, b.first);
    EXPECT_DOUBLE_EQ(a.second, b.second);
}

// ---------------------------------------------------------------------
// State-machine edge cases (faults disabled).
// ---------------------------------------------------------------------

TEST(DiskEdge, SleepWithPendingRequestIsRefused)
{
    Fixture f;
    Disk disk = f.make(DiskConfig::idleOnly());
    bool done = false;
    disk.submit(100, 1, [&](DiskIoStatus) { done = true; });
    disk.sleep();  // must be ignored: a request is in flight
    EXPECT_NE(disk.state(), DiskState::Sleep);
    EXPECT_NE(disk.state(), DiskState::SpinningDown);
    f.queue.advanceTo(equivSeconds(1.0));
    EXPECT_TRUE(done);
    EXPECT_EQ(disk.requestsServed(), 1u);
    // Quiescent now: sleep is honoured.
    disk.sleep();
    f.queue.advanceTo(equivSeconds(10.0));
    EXPECT_EQ(disk.state(), DiskState::Sleep);
}

TEST(DiskEdge, SubmitWhileSpinningDownWaitsThenSpinsUp)
{
    Fixture f;
    Disk disk = f.make(DiskConfig::spindown(0.5));
    // The inactivity timer arms once a request completes; let the
    // spin-down start (threshold 0.5 s, spin-down lasts 5 s).
    disk.submit(50, 1, [](DiskIoStatus) {});
    f.queue.advanceTo(equivSeconds(1.0));
    ASSERT_EQ(disk.state(), DiskState::SpinningDown);

    bool done = false;
    disk.submit(100, 1, [&](DiskIoStatus s) {
        done = (s == DiskIoStatus::Ok);
    });
    // Still spinning down; the request waits for STANDBY.
    EXPECT_EQ(disk.state(), DiskState::SpinningDown);
    f.queue.advanceTo(equivSeconds(15.0));
    EXPECT_TRUE(done);
    EXPECT_EQ(disk.spinUps(), 1u);
    EXPECT_EQ(disk.requestsServed(), 2u);
}

TEST(DiskEdge, TinySpindownThresholdSpinsDownPromptly)
{
    Fixture f;
    Disk disk = f.make(DiskConfig::spindown(1e-6));
    bool done = false;
    disk.submit(100, 1, [&](DiskIoStatus) { done = true; });
    f.queue.advanceTo(equivSeconds(6.0));
    EXPECT_TRUE(done);
    // The near-zero threshold spun the disk down immediately after
    // the request completed.
    EXPECT_EQ(disk.state(), DiskState::Standby);
    EXPECT_EQ(disk.spinDowns(), 1u);
}

TEST(DiskEdge, HugeSpindownThresholdNeverFires)
{
    Fixture f;
    Disk disk = f.make(DiskConfig::spindown(1e6));
    bool done = false;
    disk.submit(100, 1, [&](DiskIoStatus) { done = true; });
    f.queue.advanceTo(equivSeconds(60.0));
    EXPECT_TRUE(done);
    EXPECT_EQ(disk.state(), DiskState::Idle);
    EXPECT_EQ(disk.spinDowns(), 0u);
}

TEST(DiskEdge, EnergyIsMonotonicAcrossModeChanges)
{
    Fixture f;
    Disk disk = f.make(DiskConfig::spindown(0.5));
    disk.submit(100, 2, [](DiskIoStatus) {});
    double last = 0;
    // Sample through service, idle, spin-down, standby and sleep.
    for (int i = 1; i <= 40; ++i) {
        f.queue.advanceTo(equivSeconds(0.5 * i));
        if (i == 30)
            disk.sleep();
        double now = disk.energyJ();
        EXPECT_GE(now, last) << "at sample " << i;
        last = now;
    }
    EXPECT_GT(last, 0.0);
}

// ---------------------------------------------------------------------
// Kernel retry/recovery and structured run results.
// ---------------------------------------------------------------------

TEST(FaultRecovery, TransientFaultsAreRetriedAndRunCompletes)
{
    SystemConfig config;
    config.diskConfig.fault = faultsWith(0.3);
    BenchmarkRun run = tinyRun(Benchmark::Jess, config);
    System &sys = *run.system;

    EXPECT_TRUE(run.result.ok());
    EXPECT_TRUE(sys.kernel().workloadDone());
    EXPECT_GT(sys.kernel().diskFaults(), 0u);
    EXPECT_GT(sys.kernel().diskRetries(), 0u);
    EXPECT_EQ(sys.kernel().diskGiveUps(), 0u);
    EXPECT_EQ(sys.disk().faults().transientErrors(),
              sys.kernel().diskFaults());

    // The recovery handler ran as an energy-attributed service.
    const ServiceStats &recovery =
        sys.kernel().serviceStats(ServiceKind::ErrorRecovery);
    EXPECT_GT(recovery.invocations, 0u);
    EXPECT_EQ(recovery.invocations, sys.kernel().diskRetries());
    EXPECT_GT(recovery.cycles, 0u);
    EXPECT_GT(recovery.energyJ, 0.0);

    // Counters made it into the totals bank.
    EXPECT_EQ(sys.totals().total(CounterId::DiskRetry),
              sys.kernel().diskRetries());
    EXPECT_EQ(sys.totals().total(CounterId::DiskFault),
              sys.kernel().diskFaults());

    // And into dumpStats.
    std::ostringstream out;
    sys.dumpStats(out);
    EXPECT_NE(out.str().find("disk.faults.transient"),
              std::string::npos);
    EXPECT_NE(out.str().find("kernel.disk_retries"),
              std::string::npos);
}

TEST(FaultRecovery, FaultyRunCostsMoreThanCleanRun)
{
    BenchmarkRun clean = tinyRun(Benchmark::Jess);
    SystemConfig config;
    config.diskConfig.fault = faultsWith(0.4);
    BenchmarkRun faulty = tinyRun(Benchmark::Jess, config);
    ASSERT_TRUE(faulty.result.ok());
    // Recovery costs time (backoff + retried mechanics) and energy.
    EXPECT_GT(faulty.system->now(), clean.system->now());
    EXPECT_GT(faulty.system->diskEnergyJ(),
              clean.system->diskEnergyJ());
}

TEST(FaultRecovery, PersistentFaultsGiveUpWithStructuredResult)
{
    SystemConfig config;
    config.diskConfig.fault = faultsWith(1.0);
    config.kernelParams.diskRetry.maxAttempts = 3;
    BenchmarkRun run = tinyRun(Benchmark::Jess, config);
    System &sys = *run.system;

    EXPECT_EQ(run.result.outcome, RunOutcome::IoFailed);
    EXPECT_FALSE(run.result.ok());
    EXPECT_NE(run.result.diagnostics.find("transient"),
              std::string::npos);
    EXPECT_GE(sys.kernel().diskGiveUps(), 1u);
    EXPECT_EQ(sys.kernel().diskRetries(), 2u);
    EXPECT_TRUE(sys.kernel().ioFailed());
    EXPECT_EQ(sys.kernel().ioFailure().attempts, 3);
    // The partial statistics stay inspectable.
    EXPECT_GT(sys.now(), 0u);
    EXPECT_GT(run.breakdown.cpuMemEnergyJ(), 0.0);
}

TEST(FaultRecovery, WatchdogExpiryIsStructuredNotFatal)
{
    SystemConfig config;
    config.maxCycles = 50'000;
    BenchmarkRun run = tinyRun(Benchmark::Jess, config);
    EXPECT_EQ(run.result.outcome, RunOutcome::WatchdogExpired);
    EXPECT_GE(run.result.cycles, 50'000u);
    EXPECT_NE(run.result.diagnostics.find("watchdog"),
              std::string::npos);
}

TEST(FaultRecovery, RunOutcomeNames)
{
    EXPECT_STREQ(runOutcomeName(RunOutcome::Completed), "completed");
    EXPECT_STREQ(runOutcomeName(RunOutcome::WatchdogExpired),
                 "watchdog-expired");
    EXPECT_STREQ(runOutcomeName(RunOutcome::IoFailed), "io-failed");
}

// ---------------------------------------------------------------------
// Configuration plumbing.
// ---------------------------------------------------------------------

TEST(FaultConfig, FromConfigReadsFaultAndRetryKeys)
{
    Config args;
    args.parseAssignment("disk.fault.enabled=true");
    args.parseAssignment("disk.fault.transient_rate=0.25");
    args.parseAssignment("disk.fault.seek_rate=0.125");
    args.parseAssignment("disk.fault.window_start_s=1.5");
    args.parseAssignment("disk.fault.seed=42");
    args.parseAssignment("disk.retry.max_attempts=4");
    args.parseAssignment("disk.retry.backoff_s=0.01");
    SystemConfig config = SystemConfig::fromConfig(args);
    EXPECT_TRUE(config.diskConfig.fault.enabled);
    EXPECT_DOUBLE_EQ(config.diskConfig.fault.transientErrorRate,
                     0.25);
    EXPECT_DOUBLE_EQ(config.diskConfig.fault.seekErrorRate, 0.125);
    EXPECT_DOUBLE_EQ(config.diskConfig.fault.windowStartSeconds, 1.5);
    EXPECT_EQ(config.diskConfig.fault.seed, 42u);
    EXPECT_EQ(config.kernelParams.diskRetry.maxAttempts, 4);
    EXPECT_DOUBLE_EQ(config.kernelParams.diskRetry.backoffSeconds,
                     0.01);
}

TEST_F(ThrowingErrors, FromConfigRejectsOutOfRangeValues)
{
    {
        Config args;
        args.parseAssignment("time_scale=-1");
        EXPECT_THROW(SystemConfig::fromConfig(args), SimError);
    }
    {
        Config args;
        args.parseAssignment("sample_window=0");
        EXPECT_THROW(SystemConfig::fromConfig(args), SimError);
    }
    {
        Config args;
        args.parseAssignment("max_cycles=0");
        EXPECT_THROW(SystemConfig::fromConfig(args), SimError);
    }
    {
        Config args;
        args.parseAssignment("disk.fault.transient_rate=2.0");
        EXPECT_THROW(SystemConfig::fromConfig(args), SimError);
    }
    {
        Config args;
        args.parseAssignment("disk.retry.max_attempts=0");
        EXPECT_THROW(SystemConfig::fromConfig(args), SimError);
    }
    {
        Config args;
        args.parseAssignment("disk.config=spindown");
        args.parseAssignment("disk.threshold_s=-2");
        EXPECT_THROW(SystemConfig::fromConfig(args), SimError);
    }
}
