/**
 * @file
 * Crash-consistency and fault-injection tests for the host-I/O seam
 * (DESIGN.md §4k): deterministic fault policies (EIO, ENOSPC, short
 * writes, torn renames, crash-at-op, byte budgets), op-log recording
 * and prefix replay under every CrashVariant, and the structured
 * degradation paths — journal append failure degrades a sweep to
 * non-durable mode (and resume=1 splices what landed), autosave
 * ENOSPC degrades a run to checkpoint-less execution, and the serve
 * protocol carries the degraded flag.
 *
 * The exhaustive prefix sweep (hundreds of prefixes over a recorded
 * runner sweep and serve-pool session) lives in bench_crashsim; the
 * tests here cover each invariant once with small recorded sessions.
 */

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/journal.hh"
#include "core/runner.hh"
#include "core/system.hh"
#include "serve/checkpoint_pool.hh"
#include "serve/protocol.hh"
#include "sim/checkpoint.hh"
#include "sim/host_io.hh"
#include "sim/logging.hh"
#include "workload/workload.hh"

using namespace softwatt;

namespace fs = std::filesystem;

namespace
{

class QuietLog
{
  public:
    QuietLog() : saved(logLevel()) { setLogLevel(LogLevel::Quiet); }
    ~QuietLog() { setLogLevel(saved); }

  private:
    LogLevel saved;
};

/** Per-test scratch path (ctest runs tests concurrently in one dir). */
std::string
scratch(const std::string &name)
{
    return "crashsim_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** A checkpoint image whose identity is its config fingerprint. */
CheckpointImage
imageWithFingerprint(std::uint64_t fingerprint)
{
    CheckpointImage image;
    image.configFingerprint = fingerprint;
    image.cpuModel = 1;
    ChunkWriter payload;
    payload.u64(fingerprint);
    payload.str("crash-consistency");
    image.add("payload", payload);
    return image;
}

/** A small but complete machine with the jess benchmark attached. */
std::unique_ptr<System>
makeSystem(double scale = 0.03)
{
    SystemConfig config;
    config.sampleWindow = 20'000;
    auto sys = std::make_unique<System>(config);
    WorkloadSpec spec =
        scaleWorkload(benchmarkSpec(Benchmark::Jess), scale);
    sys->attachWorkload(std::make_unique<Workload>(spec));
    return sys;
}

/** Number of Sync barriers on @p path within the first @p prefix
 *  ops: each one acknowledges everything written to it so far. */
std::size_t
ackedSyncs(const std::vector<IoRecord> &log, std::size_t prefix,
           const std::string &path)
{
    std::size_t acked = 0;
    for (std::size_t i = 0; i < prefix && i < log.size(); ++i) {
        if (log[i].kind == IoOpKind::Sync && log[i].path == path)
            ++acked;
    }
    return acked;
}

} // namespace

TEST(HostIoFaults, DurabilityNamesRoundTrip)
{
    EXPECT_STREQ(durabilityName(Durability::Buffered), "buffered");
    EXPECT_STREQ(durabilityName(Durability::Full), "full");

    bool ok = false;
    EXPECT_EQ(durabilityFromName("buffered", ok),
              Durability::Buffered);
    EXPECT_TRUE(ok);
    EXPECT_EQ(durabilityFromName("full", ok), Durability::Full);
    EXPECT_TRUE(ok);
    durabilityFromName("paranoid", ok);
    EXPECT_FALSE(ok);
}

TEST(HostIoFaults, ShortWriteTruncatesAndReportsFailure)
{
    const std::string path = scratch("short.txt");
    hostRemoveBestEffort(path);

    IoFaultPolicy policy;
    policy.enabled = true;
    policy.seed = 7;
    policy.shortWriteRate = 1.0;
    const std::string payload = "twelve bytes";
    {
        ScopedIoFaults faults(policy);
        HostFile file;
        ASSERT_TRUE(file.open(path, /*truncate=*/true));
        IoStatus st = file.write(payload);
        // The writer is told the truth...
        EXPECT_FALSE(st);
        EXPECT_NE(st.message.find("short write"), std::string::npos);
    }
    // ...but the truncated prefix really reached the disk.
    EXPECT_LT(hostFileSize(path), payload.size());
    hostRemoveBestEffort(path);
}

TEST(HostIoFaults, TornRenameLeavesZeroLengthStub)
{
    const std::string from = scratch("torn-src.txt");
    const std::string to = scratch("torn-dst.txt");
    hostRemoveBestEffort(from);
    hostRemoveBestEffort(to);
    ASSERT_TRUE(
        hostWriteFileAtomic(from, "payload", Durability::Buffered));

    IoFaultPolicy policy;
    policy.enabled = true;
    policy.seed = 11;
    policy.tornRenameRate = 1.0;
    {
        ScopedIoFaults faults(policy);
        IoStatus st = hostRename(from, to, Durability::Buffered);
        EXPECT_FALSE(st);
    }
    // A torn rename: the source entry is gone, the destination is a
    // detectable stub rather than the complete file.
    EXPECT_FALSE(hostFileExists(from));
    EXPECT_TRUE(hostFileExists(to));
    EXPECT_EQ(hostFileSize(to), 0u);
    hostRemoveBestEffort(to);
}

TEST(HostIoFaults, CrashAtOpFailsEveryLaterOperation)
{
    const std::string path = scratch("cut.txt");
    hostRemoveBestEffort(path);

    IoFaultPolicy policy;
    policy.enabled = true;
    policy.crashAtOp = 2;
    {
        ScopedIoFaults faults(policy);
        HostFile file;
        ASSERT_TRUE(file.open(path, /*truncate=*/true));  // op 1
        ASSERT_TRUE(file.write("a"));                     // op 2
        EXPECT_FALSE(file.write("b"));                    // op 3
        EXPECT_TRUE(HostIo::instance().powerLost());
        // The latch holds: nothing works after the cut.
        EXPECT_FALSE(file.flush());
        EXPECT_FALSE(hostRemove(path));
    }
    EXPECT_FALSE(HostIo::instance().powerLost());
    EXPECT_EQ(slurp(path), "a");
    hostRemoveBestEffort(path);
}

TEST(HostIoFaults, EnospcAfterBytesEnforcesBudget)
{
    const std::string path = scratch("budget.txt");
    hostRemoveBestEffort(path);

    IoFaultPolicy policy;
    policy.enabled = true;
    policy.enospcAfterBytes = 10;
    {
        ScopedIoFaults faults(policy);
        HostFile file;
        ASSERT_TRUE(file.open(path, /*truncate=*/true));
        EXPECT_TRUE(file.write("12345678"));  // 8 <= 10: fits
        IoStatus st = file.write("12345678"); // 16 > 10: disk full
        EXPECT_FALSE(st);
        EXPECT_NE(st.message.find("no space left"),
                  std::string::npos);
    }
    EXPECT_EQ(hostFileSize(path), 8u);
    hostRemoveBestEffort(path);
}

TEST(CrashReplay, JournalAckedEntriesSurviveEveryPrefix)
{
    QuietLog quiet;
    const std::string rec = scratch("journal_rec");
    const std::string replay = scratch("journal_replay");
    fs::remove_all(rec);
    fs::create_directories(rec);
    const std::string journalFile = rec + "/answers.jsonl";

    // Record a full-durability journal session: every append ends in
    // an fdatasync barrier, so each entry is acknowledged durable.
    std::vector<JournalEntry> appended;
    HostIo::instance().startRecording();
    {
        RunJournal journal;
        ASSERT_TRUE(journal.open(journalFile, /*truncate=*/true,
                                 Durability::Full));
        for (int i = 0; i < 4; ++i) {
            JournalEntry entry;
            entry.experiment = "crashsim";
            entry.bench = "jess";
            entry.variant = "v" + std::to_string(i);
            entry.config = "00000000000000" +
                           std::to_string(10 + i);
            entry.outcome = "completed";
            entry.attempts = 1;
            entry.runJson = "{\n  \"run\": " + std::to_string(i) +
                            "\n}";
            journal.append(entry);
            ASSERT_FALSE(journal.degraded());
            appended.push_back(entry);
        }
    }
    std::vector<IoRecord> log = HostIo::instance().stopRecording();
    ASSERT_GE(log.size(), appended.size() * 3);

    // A crash after any op prefix, under any persistence variant,
    // must never lose an acknowledged entry, and every line that
    // parses must be one of the appended entries (no corruption).
    for (std::size_t prefix = 0; prefix <= log.size(); ++prefix) {
        for (CrashVariant variant : crashVariants) {
            replayCrashPrefix(log, prefix, variant, rec, replay);
            std::size_t acked =
                ackedSyncs(log, prefix, journalFile);
            std::vector<JournalEntry> loaded =
                RunJournal::load(replay + "/answers.jsonl");
            EXPECT_GE(loaded.size(), acked)
                << "prefix " << prefix << " variant "
                << crashVariantName(variant);
            ASSERT_LE(loaded.size(), appended.size());
            for (std::size_t j = 0; j < loaded.size(); ++j) {
                EXPECT_EQ(loaded[j].variant, appended[j].variant);
                EXPECT_EQ(loaded[j].config, appended[j].config);
                EXPECT_EQ(loaded[j].runJson, appended[j].runJson);
            }
        }
    }
    fs::remove_all(rec);
    fs::remove_all(replay);
}

TEST(CrashReplay, AutosaveChainNeverServesACorruptImage)
{
    QuietLog quiet;
    const std::string rec = scratch("autosave_rec");
    const std::string replay = scratch("autosave_replay");
    fs::remove_all(rec);
    fs::create_directories(rec);
    const std::string ckpt = rec + "/auto.ckpt";

    HostIo::instance().startRecording();
    for (std::uint64_t generation = 1; generation <= 3; ++generation)
        autosaveCheckpoint(ckpt, imageWithFingerprint(generation),
                           Durability::Full);
    std::vector<IoRecord> log = HostIo::instance().stopRecording();
    ASSERT_GE(log.size(), 12u);

    const std::string replayCkpt = replay + "/auto.ckpt";
    for (std::size_t prefix = 0; prefix <= log.size(); ++prefix) {
        for (CrashVariant variant : crashVariants) {
            replayCrashPrefix(log, prefix, variant, rec, replay);
            // Restore-with-fallback: the newest generation first,
            // the rotated one when the newest is torn or absent.
            // Whatever reads cleanly must be an image we wrote —
            // recovery may lose progress, never invent state.
            std::uint64_t restored = 0;
            for (const std::string &candidate :
                 {replayCkpt,
                  checkpointPreviousGeneration(replayCkpt)}) {
                try {
                    restored =
                        readCheckpoint(candidate).configFingerprint;
                    break;
                } catch (const CheckpointError &) {
                    // Detected corruption/absence: fall back.
                }
            }
            EXPECT_LE(restored, 3u)
                << "prefix " << prefix << " variant "
                << crashVariantName(variant);
        }
    }

    // With the whole session persisted — even under the harshest
    // synced-only view — the newest autosave must read back intact:
    // full durability means an acknowledged autosave survives.
    replayCrashPrefix(log, log.size(), CrashVariant::SyncedOnly, rec,
                      replay);
    EXPECT_EQ(readCheckpoint(replayCkpt).configFingerprint, 3u);
    fs::remove_all(rec);
    fs::remove_all(replay);
}

TEST(CrashReplay, PoolPromoteRecoveryToleratesEveryPrefix)
{
    QuietLog quiet;
    const std::string rec = scratch("pool_rec");
    const std::string replay = scratch("pool_replay");
    fs::remove_all(rec);
    fs::create_directories(rec);
    const std::uint64_t key = 0x00c0ffee00c0ffeeull;

    HostIo::instance().startRecording();
    {
        serve::CheckpointPool pool(rec, 64 << 20, Durability::Full);
        for (std::uint64_t generation = 1; generation <= 2;
             ++generation) {
            std::string inflight = pool.inflightPath(key);
            writeCheckpoint(inflight,
                            imageWithFingerprint(generation),
                            Durability::Full);
            ASSERT_TRUE(pool.promote(key, inflight));
        }
    }
    std::vector<IoRecord> log = HostIo::instance().stopRecording();
    ASSERT_GE(log.size(), 10u);

    for (std::size_t prefix = 0; prefix <= log.size(); ++prefix) {
        for (CrashVariant variant : crashVariants) {
            replayCrashPrefix(log, prefix, variant, rec, replay);
            serve::CheckpointPool pool(replay, 64 << 20,
                                       Durability::Full);
            // Recovery over any crash state must not throw, and any
            // image it then serves must verify as one we wrote.
            pool.recover();
            std::string hit = pool.lookup(key);
            if (hit.empty())
                continue;  // Lost progress: acceptable, cold start.
            std::uint64_t restored = 0;
            for (const std::string &candidate :
                 {hit, checkpointPreviousGeneration(hit)}) {
                try {
                    restored =
                        readCheckpoint(candidate).configFingerprint;
                    break;
                } catch (const CheckpointError &) {
                }
            }
            EXPECT_LE(restored, 2u)
                << "prefix " << prefix << " variant "
                << crashVariantName(variant);
        }
    }

    // The fully-persisted synced-only state recovers the newest
    // promoted image.
    replayCrashPrefix(log, log.size(), CrashVariant::SyncedOnly, rec,
                      replay);
    serve::CheckpointPool pool(replay, 64 << 20, Durability::Full);
    pool.recover();
    std::string hit = pool.lookup(key);
    ASSERT_FALSE(hit.empty());
    EXPECT_EQ(readCheckpoint(hit).configFingerprint, 2u);
    fs::remove_all(rec);
    fs::remove_all(replay);
}

TEST(DurabilityDegrade, JournalEnospcMidSweepDegradesAndResumes)
{
    QuietLog quiet;
    const std::string out = scratch("enospc.json");
    const std::string journalFile = journalPathFor(out);
    hostRemoveBestEffort(out);
    hostRemoveBestEffort(journalFile);

    auto makeSpec = [&](bool resume) {
        ExperimentSpec spec;
        spec.title = "crashsim-enospc";
        spec.jobs = 1;
        spec.jsonPath = out;
        spec.resume = resume;
        SystemConfig config;
        config.sampleWindow = 20'000;
        spec.add(Benchmark::Jess, config, 0.03);
        spec.add(Benchmark::Db, config, 0.03);
        return spec;
    };

    // Reference sweep: no faults; learn the byte extent of the first
    // journal entry so the disk can "fill up" right after it lands.
    ExperimentResult reference = runExperiment(makeSpec(false));
    ASSERT_EQ(reference.failedRuns(), 0u);
    ASSERT_FALSE(reference.storageDegraded());
    const std::string referenceDoc = slurp(out);
    ASSERT_FALSE(referenceDoc.empty());
    std::string firstLine;
    {
        std::ifstream in(journalFile);
        ASSERT_TRUE(bool(std::getline(in, firstLine)));
        ASSERT_FALSE(firstLine.empty());
    }

    // Faulted sweep: the first append fits the byte budget exactly,
    // the second hits ENOSPC. The sweep must complete every run and
    // degrade to non-durable mode instead of dying.
    ExperimentSpec faulted = makeSpec(false);
    faulted.ioFaults.enabled = true;
    faulted.ioFaults.enospcAfterBytes = firstLine.size() + 1;
    ExperimentResult degraded = runExperiment(faulted);
    EXPECT_EQ(degraded.failedRuns(), 0u);
    EXPECT_TRUE(degraded.storageDegraded());

    // Exactly the acknowledged run landed in the journal.
    std::vector<JournalEntry> entries =
        RunJournal::load(journalFile);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].bench, "jess");

    // resume=1 splices the landed run and re-executes the lost one;
    // the final document is byte-identical to the uninterrupted
    // reference.
    ExperimentResult resumed = runExperiment(makeSpec(true));
    EXPECT_EQ(resumed.failedRuns(), 0u);
    EXPECT_FALSE(resumed.storageDegraded());
    EXPECT_EQ(slurp(out), referenceDoc);

    hostRemoveBestEffort(out);
    hostRemoveBestEffort(journalFile);
}

TEST(DurabilityDegrade, AutosaveEnospcContinuesCheckpointless)
{
    QuietLog quiet;
    const std::string ckpt = scratch("degraded.ckpt");
    hostRemoveBestEffort(ckpt);
    hostRemoveBestEffort(ckpt + ".tmp");
    hostRemoveBestEffort(checkpointPreviousGeneration(ckpt));

    IoFaultPolicy policy;
    policy.enabled = true;
    policy.seed = 3;
    policy.enospcRate = 1.0;

    std::unique_ptr<System> sys = makeSystem();
    sys->setCheckpointPolicy(/*everyS=*/0.0003, ckpt);
    {
        ScopedIoFaults faults(policy);
        // The run survives the full disk: it degrades to
        // checkpoint-less execution instead of dying mid-simulation.
        ASSERT_TRUE(sys->run().ok());
    }
    EXPECT_TRUE(sys->checkpointingDegraded());
    EXPECT_EQ(sys->checkpointsTaken(), 0u);
    EXPECT_FALSE(hostFileExists(ckpt));

    // The degraded run computed the same answer a healthy one does.
    std::unique_ptr<System> healthy = makeSystem();
    ASSERT_TRUE(healthy->run().ok());
    EXPECT_EQ(sys->cpu().committedInsts(),
              healthy->cpu().committedInsts());
    hostRemoveBestEffort(ckpt + ".tmp");
}

TEST(ServeDurability, DegradedFlagRoundTripsTheProtocol)
{
    serve::ServeResponse response;
    response.id = "job-1";
    response.status = "ok";
    response.degraded = true;
    response.document = "{}";

    serve::ServeResponse parsed;
    std::string error;
    ASSERT_TRUE(serve::parseServeResponse(
        serve::renderServeResponse(response), parsed, error))
        << error;
    EXPECT_TRUE(parsed.degraded);

    // Absent or zero stays false (older daemons never set it).
    response.degraded = false;
    ASSERT_TRUE(serve::parseServeResponse(
        serve::renderServeResponse(response), parsed, error));
    EXPECT_FALSE(parsed.degraded);
}

TEST(DurabilityDegrade, FromArgsParsesDurabilityAndFaultKeys)
{
    QuietLog quiet;
    Config good;
    good.set("durability", std::string("full"));
    good.set("io_fault_seed", std::int64_t(9));
    good.set("io_fault_rate", 0.25);
    ExperimentSpec spec = ExperimentSpec::fromArgs("t", good);
    EXPECT_EQ(spec.durability, Durability::Full);
    EXPECT_TRUE(spec.ioFaults.enabled);
    EXPECT_EQ(spec.ioFaults.seed, 9u);
    EXPECT_EQ(spec.ioFaults.errorRate, 0.25);

    setErrorHandler(throwingErrorHandler);
    Config badName;
    badName.set("durability", std::string("paranoid"));
    EXPECT_THROW(ExperimentSpec::fromArgs("t", badName), SimError);

    Config badRate;
    badRate.set("io_fault_rate", 1.5);
    EXPECT_THROW(ExperimentSpec::fromArgs("t", badRate), SimError);
    setErrorHandler(nullptr);
}
