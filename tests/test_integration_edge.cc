/**
 * @file
 * Edge-case integration tests: interrupts landing during blocked
 * I/O, queued requests across spin-ups, GC-driven fault chains, and
 * replay hygiene across fast-forward.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "cpu/superscalar_cpu.hh"
#include "os/kernel.hh"
#include "os/syscalls.hh"

using namespace softwatt;

namespace
{

class ScriptProgram : public InstSource
{
  public:
    std::deque<MicroOp> ops;

    FetchOutcome
    next(MicroOp &op) override
    {
        if (ops.empty())
            return FetchOutcome::End;
        op = ops.front();
        ops.pop_front();
        return FetchOutcome::Op;
    }
};

struct Fixture
{
    MachineParams machine;
    EventQueue queue;
    CounterSink sink;
    CacheHierarchy hierarchy{machine, sink};
    Tlb tlb{64};
    Disk disk{queue, 200e6, DiskConfig::idleOnly(), 100.0, 5};
    Kernel::Params kparams;

    MicroOp
    readSyscall(std::uint32_t file, std::uint32_t bytes)
    {
        MicroOp op;
        op.cls = InstClass::Syscall;
        op.pc = 0x1100;
        op.syscallId = std::uint16_t(SyscallId::Read);
        op.syscallArg = encodeIoArg(file, 0, bytes);
        op.asid = 1;
        op.mode = ExecMode::User;
        return op;
    }
};

} // namespace

TEST(IntegrationEdge, ClockInterruptDuringBlockedRead)
{
    Fixture f;
    f.kparams.clockTickSeconds = 0.001;  // 2k-cycle tick: lands
                                         // inside the disk wait
    Kernel kernel(f.queue, f.tlb, f.hierarchy, f.disk, f.machine,
                  f.kparams, f.sink);
    SuperscalarCpu cpu(f.machine, f.hierarchy, f.tlb, f.sink, kernel);

    ScriptProgram program;
    auto file = kernel.fs().createFile(64 * 1024);
    program.ops.push_back(f.readSyscall(file, 4096));
    kernel.setUserProgram(&program);
    kernel.startClock();

    for (int i = 0; i < 3'000'000; ++i) {
        bool alive = cpu.cycle();
        f.queue.advanceTo(f.queue.now() + 1);
        if (!alive)
            break;
    }
    // The read completed despite interrupts landing mid-wait...
    EXPECT_TRUE(kernel.workloadDone());
    EXPECT_EQ(kernel.serviceStats(ServiceKind::Read).invocations, 1u);
    // ...and the timer kept firing while the process was blocked.
    EXPECT_GE(kernel.clockInterrupts(), 2u);
    EXPECT_EQ(f.sink.liveBanks(), 0u);
}

TEST(IntegrationEdge, QueuedRequestsAcrossASpinup)
{
    EventQueue queue;
    Disk disk(queue, 200e6, DiskConfig::spindown(2.0), 100.0, 7);
    // Reach STANDBY.
    disk.submit(100, 1, [](DiskIoStatus) {});
    queue.runUntil(Tick(10.0 / 100.0 * 200e6));
    ASSERT_EQ(disk.state(), DiskState::Standby);
    // Three requests queue behind one spin-up.
    int done = 0;
    disk.submit(200, 1, [&](DiskIoStatus) { ++done; });
    disk.submit(300, 1, [&](DiskIoStatus) { ++done; });
    disk.submit(400, 1, [&](DiskIoStatus) { ++done; });
    queue.runUntil(queue.now() + Tick(10.0 / 100.0 * 200e6));
    EXPECT_EQ(done, 3);
    EXPECT_EQ(disk.spinUps(), 1u);  // one spin-up serves all three
}

TEST(IntegrationEdge, GcBurstsDriveFaultChains)
{
    // javac has the densest GC schedule: every burst first-touches
    // fresh allocation pages, so demand_zero tracks the GC count.
    WorkloadSpec spec = scaleWorkload(benchmarkSpec(Benchmark::Javac),
                                      0.05);
    std::uint64_t gc_bursts = spec.mainInsts / spec.gcPeriodInsts;
    ASSERT_GE(gc_bursts, 2u);

    SystemConfig config;
    System sys(config);
    sys.attachWorkload(std::make_unique<Workload>(spec));
    sys.run();

    const ServiceStats &dz =
        sys.kernel().serviceStats(ServiceKind::DemandZero);
    const ServiceStats &vf =
        sys.kernel().serviceStats(ServiceKind::Vfault);
    EXPECT_GE(dz.invocations, gc_bursts);
    // vfault accompanies a fraction of first touches, never exceeds.
    EXPECT_LE(vf.invocations, dz.invocations);
    EXPECT_GT(vf.invocations, 0u);
}

TEST(IntegrationEdge, FastForwardPreservesInFlightWork)
{
    // A benchmark heavy in blocking I/O: every block boundary runs
    // squash-collect + requeue; nothing may be lost or duplicated.
    SystemConfig config;
    config.idleFastForwardAfter = 32;  // aggressive fast-forward
    BenchmarkRun eager = runBenchmark(Benchmark::Jess, config, 0.03);

    SystemConfig lazy_config;
    lazy_config.idleFastForwardAfter = 100'000'000;  // never
    BenchmarkRun lazy =
        runBenchmark(Benchmark::Jess, lazy_config, 0.03);

    // Committed user work must match exactly; only idle-loop filler
    // differs between the two runs.
    EXPECT_EQ(eager.system->totals().get(ExecMode::User,
                                         CounterId::CommittedInsts),
              lazy.system->totals().get(ExecMode::User,
                                        CounterId::CommittedInsts));
    EXPECT_EQ(
        eager.system->kernel().serviceStats(ServiceKind::Read)
            .invocations,
        lazy.system->kernel().serviceStats(ServiceKind::Read)
            .invocations);
}

TEST(IntegrationEdge, WorkloadColdBurstsHitTheDisk)
{
    // compress's cold bursts stream never-cached file regions: the
    // disk must see mid-run requests well after the load phase.
    SystemConfig config;
    BenchmarkRun run = runBenchmark(Benchmark::Compress, config, 0.2);
    // Load phase alone needs ~2 requests per class file with 128KB
    // prefetch; cold bursts add more on top.
    WorkloadSpec spec = scaleWorkload(
        benchmarkSpec(Benchmark::Compress), 0.2);
    std::uint64_t load_requests_upper =
        std::uint64_t(spec.numClassFiles) *
        (spec.classFileBytes / (128 * 1024) + 1);
    EXPECT_GT(run.system->disk().requestsServed(),
              load_requests_upper);
}

TEST(IntegrationEdge, SampleWindowGranularityDoesNotChangeEnergy)
{
    // The post-processing pass loses per-cycle detail, not energy:
    // totals are window-size invariant (paper Section 2).
    SystemConfig coarse;
    coarse.sampleWindow = 500'000;
    SystemConfig fine;
    fine.sampleWindow = 10'000;
    BenchmarkRun a = runBenchmark(Benchmark::Db, coarse, 0.03);
    BenchmarkRun b = runBenchmark(Benchmark::Db, fine, 0.03);
    EXPECT_EQ(a.system->now(), b.system->now());
    // Clock energy depends mildly on windowing (activity averaging),
    // so compare with a small tolerance.
    EXPECT_NEAR(a.breakdown.cpuMemEnergyJ(),
                b.breakdown.cpuMemEnergyJ(),
                0.02 * a.breakdown.cpuMemEnergyJ());
}
