/**
 * @file
 * Smoke tests for the table/figure text renderers and the
 * command-line argument parser.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace softwatt;

namespace
{

PowerBreakdown
sampleBreakdown()
{
    PowerBreakdown b;
    b.freqHz = 200e6;
    b.cycles[int(ExecMode::User)] = 140'000'000;
    b.cycles[int(ExecMode::KernelInst)] = 40'000'000;
    b.cycles[int(ExecMode::KernelSync)] = 2'000'000;
    b.cycles[int(ExecMode::Idle)] = 18'000'000;
    b.energyJ[int(ExecMode::User)][int(Component::L1ICache)] = 1.4;
    b.energyJ[int(ExecMode::User)][int(Component::Clock)] = 1.5;
    b.energyJ[int(ExecMode::KernelInst)][int(Component::Clock)] = 0.3;
    b.energyJ[int(ExecMode::Idle)][int(Component::Memory)] = 0.04;
    b.diskEnergyJ = 1.6;
    return b;
}

} // namespace

TEST(Report, PowerBudgetMentionsEveryComponent)
{
    std::ostringstream out;
    printPowerBudget(out, "Figure 5", sampleBreakdown());
    for (Component c : allComponents)
        EXPECT_NE(out.str().find(componentName(c)), std::string::npos)
            << componentName(c);
}

TEST(Report, Table2RowsPerBenchmark)
{
    std::ostringstream out;
    printTable2(out, {"jess", "db"},
                {sampleBreakdown(), sampleBreakdown()});
    EXPECT_NE(out.str().find("jess"), std::string::npos);
    EXPECT_NE(out.str().find("db"), std::string::npos);
    EXPECT_NE(out.str().find("user"), std::string::npos);
}

TEST(Report, Table3UsesCounterRatios)
{
    CounterBank bank;
    bank.addTo(ExecMode::User, CounterId::Cycles, 1000);
    bank.addTo(ExecMode::User, CounterId::IL1Ref, 2000);
    std::ostringstream out;
    printTable3(out, {"x"}, {bank});
    EXPECT_NE(out.str().find("2.0000"), std::string::npos);
}

TEST(Report, Table4RanksByCycles)
{
    std::array<ServiceStats, numServices> stats{};
    stats[int(ServiceKind::Utlb)].record(500, 1e-6);
    stats[int(ServiceKind::Read)].record(2000, 9e-6);
    std::ostringstream out;
    printTable4(out, "jess", stats);
    std::string text = out.str();
    // read (more cycles) listed before utlb.
    EXPECT_LT(text.find("read"), text.find("utlb"));
}

TEST(Report, Table5AndFig8Render)
{
    std::array<ServiceStats, numServices> stats{};
    stats[int(ServiceKind::Utlb)].record(20, 2e-7);
    stats[int(ServiceKind::Utlb)].record(21, 2.1e-7);
    stats[int(ServiceKind::Read)].record(3000, 8e-5);
    std::ostringstream out;
    printTable5(out, stats, 200e6);
    printServicePower(out, stats, 200e6);
    EXPECT_NE(out.str().find("utlb"), std::string::npos);
    EXPECT_NE(out.str().find("CoD"), std::string::npos);
}

TEST(Report, TimeProfileEmitsOneRowPerWindow)
{
    SampleLog log;
    PowerTrace trace;
    for (int w = 0; w < 3; ++w) {
        SampleRecord rec;
        rec.startTick = w * 1000;
        rec.endTick = (w + 1) * 1000;
        rec.counters.addTo(ExecMode::User, CounterId::Cycles, 1000);
        log.append(rec);
        WindowPower wp;
        wp.startTick = rec.startTick;
        wp.endTick = rec.endTick;
        wp.cycles[int(ExecMode::User)] = 1000;
        wp.modePowerW[int(ExecMode::User)] = 5.0;
        trace.windows.push_back(wp);
    }
    std::ostringstream out;
    printTimeProfile(out, "Figure 4", trace, log, 200e6, 100.0);
    int rows = 0;
    std::string line;
    std::istringstream in(out.str());
    while (std::getline(in, line))
        ++rows;
    EXPECT_EQ(rows, 2 + 3);  // title + header + 3 windows
}

TEST(ParseArgs, AcceptsAssignments)
{
    const char *argv[] = {"prog", "scale=0.5", "cpu.model=mipsy"};
    Config config = parseArgs(3, const_cast<char **>(argv));
    EXPECT_DOUBLE_EQ(config.getDouble("scale", 0), 0.5);
    EXPECT_EQ(config.getString("cpu.model", ""), "mipsy");
}

TEST(ParseArgsDeath, RejectsMalformed)
{
    const char *argv[] = {"prog", "oops"};
    EXPECT_DEATH(parseArgs(2, const_cast<char **>(argv)),
                 "malformed");
}
