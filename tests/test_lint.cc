/**
 * @file
 * Tests for the softwatt-lint determinism linter: each rule is
 * exercised with a negative fixture, masking keeps comments and
 * strings from triggering rules, and path scoping plus the
 * suppression list behave as documented.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "lint/softwatt_lint.hh"

using softwatt::lint::Issue;
using softwatt::lint::lintSource;
using softwatt::lint::maskCommentsAndStrings;
using softwatt::lint::Suppressions;

namespace
{

std::vector<Issue>
lint(const std::string &path, const std::string &source)
{
    Suppressions none;
    return lintSource(path, source, none);
}

bool
hasRule(const std::vector<Issue> &issues, const std::string &rule)
{
    for (const Issue &issue : issues) {
        if (issue.rule == rule)
            return true;
    }
    return false;
}

} // namespace

TEST(LintMasking, BlanksCommentsAndStringsPreservingLines)
{
    std::string masked = maskCommentsAndStrings(
        "int a; // std::rand()\n"
        "/* rand() spans\n   two lines */\n"
        "const char *s = \"rand()\";\n"
        "char c = 'x';\n");
    EXPECT_EQ(masked.find("rand"), std::string::npos);
    EXPECT_EQ(masked.find('x'), std::string::npos);
    // Line structure survives for line-number reporting.
    EXPECT_EQ(std::count(masked.begin(), masked.end(), '\n'), 5);
    EXPECT_NE(masked.find("int a;"), std::string::npos);
}

TEST(LintMasking, HandlesRawStrings)
{
    std::string masked = maskCommentsAndStrings(
        "auto s = R\"(std::rand() time( )\";\nint b;\n");
    EXPECT_EQ(masked.find("rand"), std::string::npos);
    EXPECT_NE(masked.find("int b;"), std::string::npos);
}

TEST(LintRules, FlagsBannedRandomSources)
{
    auto issues = lint("src/cpu/foo.cc",
                       "int x = std::rand();\n"
                       "std::random_device rd;\n"
                       "srand(42);\n");
    ASSERT_EQ(issues.size(), 3u);
    EXPECT_TRUE(hasRule(issues, "banned-rand"));
    EXPECT_EQ(issues[0].line, 1);
    EXPECT_EQ(issues[1].line, 2);
    EXPECT_EQ(issues[2].line, 3);
}

TEST(LintRules, BlessedRandomHeaderIsExempt)
{
    EXPECT_TRUE(lint("src/sim/random.hh",
                     "std::random_device rd;  // seeding docs\n"
                     "std::random_device rd2;\n")
                    .empty());
}

TEST(LintRules, FlagsWallClockOnlyInSimSources)
{
    std::string source = "auto t = std::chrono::system_clock::now();\n"
                         "time_t now = time(nullptr);\n";
    EXPECT_TRUE(hasRule(lint("src/os/kernel.cc", source),
                        "wall-clock"));
    // Harness timing code outside src/ may read the clock.
    EXPECT_TRUE(lint("bench/bench_simspeed.cpp", source).empty());
}

TEST(LintRules, WallClockIdentifierNeedsCallSite)
{
    // A variable or member merely *named* time/clock is fine; only
    // call sites are flagged.
    EXPECT_TRUE(lint("src/disk/disk.cc",
                     "double time = 0; int clock = 1;\n"
                     "double seekTime(int d);\n")
                    .empty());
    EXPECT_FALSE(lint("src/disk/disk.cc",
                      "double t = clock();\n")
                     .empty());
}

TEST(LintRules, FlagsRawExitAndAbort)
{
    auto issues = lint("examples/demo.cpp",
                       "std::exit(1);\n"
                       "abort();\n"
                       "std::quick_exit(2);\n");
    ASSERT_EQ(issues.size(), 3u);
    EXPECT_TRUE(hasRule(issues, "raw-exit"));
    // exitCode / cleanExit identifiers are not call sites of exit().
    EXPECT_TRUE(lint("examples/demo.cpp",
                     "return cli.exitCode;\nbool cleanExit(true);\n")
                    .empty());
}

TEST(LintRules, FlagsUnorderedContainersOnlyInEmissionPaths)
{
    std::string source = "std::unordered_map<int, int> m;\n";
    EXPECT_TRUE(hasRule(lint("src/core/report.cc", source),
                        "unordered-emission"));
    EXPECT_TRUE(hasRule(lint("src/core/json_writer.hh", source),
                        "unordered-emission"));
    EXPECT_TRUE(lint("src/cpu/superscalar_cpu.cc", source).empty());
}

TEST(LintRules, FlagsRawAssertButNotContractMacros)
{
    EXPECT_TRUE(hasRule(lint("src/mem/cache.cc",
                             "#include <cassert>\nassert(p != q);\n"),
                        "raw-assert"));
    EXPECT_TRUE(lint("src/mem/cache.cc",
                     "static_assert(sizeof(int) == 4);\n"
                     "SW_ASSERT(p != q, \"aliasing\");\n"
                     "SW_CHECK(ok, \"state\");\n")
                    .empty());
}

TEST(LintOutput, IssuesAreSortedByLine)
{
    auto issues = lint("src/a.cc",
                       "int a;\n"
                       "abort();\n"
                       "int b;\n"
                       "std::rand();\n"
                       "std::exit(0);\n");
    ASSERT_EQ(issues.size(), 3u);
    EXPECT_EQ(issues[0].line, 2);
    EXPECT_EQ(issues[1].line, 4);
    EXPECT_EQ(issues[2].line, 5);
}

TEST(LintSuppressions, SilenceExactPathRulePairs)
{
    Suppressions sup;
    std::string error;
    ASSERT_TRUE(sup.parse("# comment\n"
                          "\n"
                          "src/sim/logging.cc raw-exit\n"
                          "src/a.cc banned-rand  # trailing note\n",
                          error))
        << error;
    EXPECT_EQ(sup.size(), 2u);
    EXPECT_TRUE(sup.suppressed("src/sim/logging.cc", "raw-exit"));
    EXPECT_FALSE(sup.suppressed("src/sim/logging.cc",
                                "banned-rand"));
    EXPECT_FALSE(sup.suppressed("src/b.cc", "raw-exit"));

    EXPECT_TRUE(lintSource("src/a.cc", "std::rand();\nabort();\n",
                           sup)
                    .size() == 1);
}

TEST(LintSuppressions, RejectsMalformedLines)
{
    Suppressions sup;
    std::string error;
    EXPECT_FALSE(sup.parse("just-a-path-without-a-rule\n", error));
    EXPECT_NE(error.find("line 1"), std::string::npos);

    Suppressions sup2;
    EXPECT_FALSE(sup2.parse("path rule extra-field\n", error));
}
