/**
 * @file
 * Tests for machine checkpoint/restore: the chunked file format
 * (round-trips, checksums, truncation and bit-flip detection,
 * version gating), autosave generation rotation, restore-and-continue
 * bit-identity against an uninterrupted reference, corruption
 * fallback to the previous generation, fingerprint rejection, and
 * warm-start model switching (in-order image into the superscalar
 * model).
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/checkpoint.hh"
#include "core/runner.hh"
#include "core/system.hh"
#include "sim/logging.hh"
#include "workload/workload.hh"

using namespace softwatt;

namespace
{

/** Per-test scratch path (ctest runs tests concurrently in one dir). */
std::string
scratch(const std::string &name)
{
    return "checkpoint_" + name;
}

void
removeCheckpoint(const std::string &path)
{
    std::remove(path.c_str());
    std::remove(checkpointPreviousGeneration(path).c_str());
    std::remove((path + ".tmp").c_str());
}

std::vector<std::uint8_t>
slurpBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string &path,
           const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              std::streamsize(bytes.size()));
}

/** A small but complete machine with the jess benchmark attached. */
std::unique_ptr<System>
makeSystem(CpuModel model = CpuModel::Superscalar,
           double scale = 0.03)
{
    SystemConfig config;
    config.sampleWindow = 20'000;
    config.cpuModel = model;
    auto sys = std::make_unique<System>(config);
    WorkloadSpec spec =
        scaleWorkload(benchmarkSpec(Benchmark::Jess), scale);
    sys->attachWorkload(std::make_unique<Workload>(spec));
    return sys;
}

/** Autosave cadence that fires several times inside a tiny run. */
constexpr double tinyCadenceS = 0.0003;  // 60k cycles at 200 MHz

/**
 * Everything observable about a finished run, rendered bit-exactly
 * (doubles in hexfloat): tick, instruction and cycle totals, the
 * full sample log, the complete counter matrix, and disk activity.
 */
std::string
finalStateSignature(System &sys)
{
    std::ostringstream out;
    out << std::hexfloat;
    out << sys.now() << ':' << sys.cpu().committedInsts() << ':'
        << sys.detailedCycles() << ':' << sys.fastForwardedCycles()
        << ':' << sys.diskEnergyJ() << ':'
        << sys.disk().spinUps() << ':'
        << sys.kernel().diskFaults() << ':';
    for (ExecMode m : allExecModes) {
        for (int c = 0; c < numCounters; ++c)
            out << sys.totals().get(m, CounterId(c)) << ',';
    }
    sys.log().writeCsv(out);
    return out.str();
}

/** A sample image with a couple of hand-built chunks. */
CheckpointImage
sampleImage()
{
    CheckpointImage image;
    image.configFingerprint = 0x1122334455667788ull;
    image.cpuModel = 1;
    ChunkWriter a;
    a.u64(42);
    a.str("hello");
    image.add("alpha", a);
    ChunkWriter b;
    for (int i = 0; i < 100; ++i)
        b.u8(std::uint8_t(i));
    image.add("beta", b);
    return image;
}

class QuietLog
{
  public:
    QuietLog() : saved(logLevel()) { setLogLevel(LogLevel::Quiet); }
    ~QuietLog() { setLogLevel(saved); }

  private:
    LogLevel saved;
};

} // namespace

TEST(CheckpointFormat, Fnv1a64KnownVectors)
{
    // Reference values of the 64-bit FNV-1a test suite.
    EXPECT_EQ(fnv1a64(nullptr, 0), 0xcbf29ce484222325ull);
    const std::uint8_t a[] = {'a'};
    EXPECT_EQ(fnv1a64(a, 1), 0xaf63dc4c8601ec8cull);
    const std::uint8_t foobar[] = {'f', 'o', 'o', 'b', 'a', 'r'};
    EXPECT_EQ(fnv1a64(foobar, 6), 0x85944171f73967e8ull);
}

TEST(CheckpointFormat, ChunkRoundTripsPrimitives)
{
    ChunkWriter w;
    w.u8(0xab);
    w.u16(0xbeef);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefull);
    w.b(true);
    w.b(false);
    w.f64(-0.0);
    w.f64(std::numeric_limits<double>::quiet_NaN());
    w.f64(1.0 / 3.0);
    w.str("chunky");
    w.str("");

    ChunkReader r(w.bytes(), "test");
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0xbeef);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_TRUE(r.b());
    EXPECT_FALSE(r.b());
    double neg_zero = r.f64();
    EXPECT_EQ(neg_zero, 0.0);
    EXPECT_TRUE(std::signbit(neg_zero));
    EXPECT_TRUE(std::isnan(r.f64()));
    EXPECT_EQ(r.f64(), 1.0 / 3.0);
    EXPECT_EQ(r.str(), "chunky");
    EXPECT_EQ(r.str(), "");
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_NO_THROW(r.finish());
}

TEST(CheckpointFormat, ReaderOverrunAndLeftoverThrow)
{
    ChunkWriter w;
    w.u32(7);
    {
        ChunkReader r(w.bytes(), "short");
        r.u16();
        EXPECT_THROW(r.u32(), CheckpointError);
    }
    {
        ChunkReader r(w.bytes(), "leftover");
        r.u16();
        EXPECT_THROW(r.finish(), CheckpointError);
    }
}

TEST(CheckpointFormat, FileRoundTripsImage)
{
    const std::string path = scratch("roundtrip.ckpt");
    removeCheckpoint(path);
    CheckpointImage image = sampleImage();
    writeCheckpoint(path, image);

    CheckpointImage loaded = readCheckpoint(path);
    EXPECT_EQ(loaded.version, checkpointFormatVersion);
    EXPECT_EQ(loaded.configFingerprint, image.configFingerprint);
    EXPECT_EQ(loaded.cpuModel, image.cpuModel);
    ASSERT_EQ(loaded.chunks.size(), 2u);
    ASSERT_NE(loaded.find("alpha"), nullptr);
    ASSERT_NE(loaded.find("beta"), nullptr);
    EXPECT_EQ(loaded.find("alpha")->payload,
              image.find("alpha")->payload);
    EXPECT_EQ(loaded.find("beta")->payload,
              image.find("beta")->payload);
    EXPECT_EQ(loaded.find("gamma"), nullptr);
    removeCheckpoint(path);
}

TEST(CheckpointFormat, TruncationIsDetected)
{
    const std::string path = scratch("truncated.ckpt");
    removeCheckpoint(path);
    writeCheckpoint(path, sampleImage());
    std::vector<std::uint8_t> bytes = slurpBytes(path);
    ASSERT_GT(bytes.size(), 40u);
    // Cut inside the last chunk's payload.
    bytes.resize(bytes.size() - 10);
    writeBytes(path, bytes);
    EXPECT_THROW(readCheckpoint(path), CheckpointError);
    removeCheckpoint(path);
}

TEST(CheckpointFormat, FlippedPayloadByteIsDetected)
{
    const std::string path = scratch("flipped.ckpt");
    removeCheckpoint(path);
    writeCheckpoint(path, sampleImage());
    std::vector<std::uint8_t> bytes = slurpBytes(path);
    // Flip one byte near the end (inside the beta payload), leaving
    // the framing intact so only the checksum can catch it.
    bytes[bytes.size() - 5] ^= 0x40;
    writeBytes(path, bytes);
    EXPECT_THROW(readCheckpoint(path), CheckpointError);
    removeCheckpoint(path);
}

TEST(CheckpointFormat, BadMagicIsDetected)
{
    const std::string path = scratch("magic.ckpt");
    removeCheckpoint(path);
    writeCheckpoint(path, sampleImage());
    std::vector<std::uint8_t> bytes = slurpBytes(path);
    bytes[0] = 'X';
    writeBytes(path, bytes);
    EXPECT_THROW(readCheckpoint(path), CheckpointError);
    removeCheckpoint(path);
}

TEST(CheckpointFormat, UnsupportedVersionIsMismatch)
{
    const std::string path = scratch("version.ckpt");
    removeCheckpoint(path);
    writeCheckpoint(path, sampleImage());
    std::vector<std::uint8_t> bytes = slurpBytes(path);
    // The u16 version sits right after the 6-byte magic.
    bytes[6] = 0xff;
    bytes[7] = 0xff;
    writeBytes(path, bytes);
    EXPECT_THROW(readCheckpoint(path), CheckpointMismatch);
    removeCheckpoint(path);
}

TEST(CheckpointFormat, MissingFileIsCheckpointError)
{
    EXPECT_THROW(readCheckpoint(scratch("nonexistent.ckpt")),
                 CheckpointError);
}

TEST(CheckpointFormat, AutosaveKeepsTwoGenerations)
{
    const std::string path = scratch("generations.ckpt");
    removeCheckpoint(path);

    CheckpointImage first = sampleImage();
    first.configFingerprint = 1;
    autosaveCheckpoint(path, first);
    EXPECT_EQ(readCheckpoint(path).configFingerprint, 1u);
    // No previous generation yet.
    EXPECT_THROW(readCheckpoint(checkpointPreviousGeneration(path)),
                 CheckpointError);

    CheckpointImage second = sampleImage();
    second.configFingerprint = 2;
    autosaveCheckpoint(path, second);
    EXPECT_EQ(readCheckpoint(path).configFingerprint, 2u);
    EXPECT_EQ(readCheckpoint(checkpointPreviousGeneration(path))
                  .configFingerprint,
              1u);

    CheckpointImage third = sampleImage();
    third.configFingerprint = 3;
    autosaveCheckpoint(path, third);
    EXPECT_EQ(readCheckpoint(path).configFingerprint, 3u);
    EXPECT_EQ(readCheckpoint(checkpointPreviousGeneration(path))
                  .configFingerprint,
              2u);
    removeCheckpoint(path);
}

TEST(CheckpointRestore, RestoreAndContinueIsBitIdentical)
{
    const std::string path = scratch("continue.ckpt");
    removeCheckpoint(path);

    // Reference: uninterrupted run with periodic autosave. The final
    // autosave on disk is a mid-run state some windows before the
    // end.
    std::unique_ptr<System> reference = makeSystem();
    reference->setCheckpointPolicy(tinyCadenceS, path);
    ASSERT_TRUE(reference->run().ok());
    ASSERT_GE(reference->checkpointsTaken(), 3u);
    const std::string expected = finalStateSignature(*reference);

    // Restore the newest autosave into a fresh machine and continue
    // under the same cadence: every observable must match the
    // uninterrupted reference bit for bit.
    std::unique_ptr<System> restored = makeSystem();
    restored->setCheckpointPolicy(tinyCadenceS, path);
    ASSERT_TRUE(restored->restoreCheckpoint(path));
    EXPECT_TRUE(restored->restored());
    EXPECT_GT(restored->now(), 0u);
    ASSERT_TRUE(restored->run().ok());
    EXPECT_EQ(finalStateSignature(*restored), expected);

    // The previous generation restores and reproduces the reference
    // as well (one more autosave happens on the way).
    std::unique_ptr<System> older = makeSystem();
    older->setCheckpointPolicy(
        tinyCadenceS, scratch("continue-older.ckpt"));
    ASSERT_TRUE(
        older->restoreCheckpoint(checkpointPreviousGeneration(path)));
    ASSERT_TRUE(older->run().ok());
    EXPECT_EQ(finalStateSignature(*older), expected);

    removeCheckpoint(path);
    removeCheckpoint(scratch("continue-older.ckpt"));
}

TEST(CheckpointRestore, CorruptLatestFallsBackOneGeneration)
{
    QuietLog quiet;
    const std::string path = scratch("fallback.ckpt");
    removeCheckpoint(path);

    std::unique_ptr<System> reference = makeSystem();
    reference->setCheckpointPolicy(tinyCadenceS, path);
    ASSERT_TRUE(reference->run().ok());
    ASSERT_GE(reference->checkpointsTaken(), 2u);
    const std::string expected = finalStateSignature(*reference);

    // Flip a payload byte in the newest generation.
    std::vector<std::uint8_t> bytes = slurpBytes(path);
    bytes[bytes.size() / 2] ^= 0x01;
    writeBytes(path, bytes);

    std::unique_ptr<System> restored = makeSystem();
    restored->setCheckpointPolicy(
        tinyCadenceS, scratch("fallback-b.ckpt"));
    ASSERT_TRUE(restored->restoreCheckpoint(path));
    ASSERT_TRUE(restored->run().ok());
    EXPECT_EQ(finalStateSignature(*restored), expected);

    removeCheckpoint(path);
    removeCheckpoint(scratch("fallback-b.ckpt"));
}

TEST(CheckpointRestore, BothGenerationsCorruptStartsFromScratch)
{
    QuietLog quiet;
    const std::string path = scratch("scorched.ckpt");
    removeCheckpoint(path);

    std::unique_ptr<System> reference = makeSystem();
    reference->setCheckpointPolicy(tinyCadenceS, path);
    ASSERT_TRUE(reference->run().ok());
    const std::string expected = finalStateSignature(*reference);

    // Damage both generations.
    for (const std::string &p :
         {path, checkpointPreviousGeneration(path)}) {
        std::vector<std::uint8_t> bytes = slurpBytes(p);
        ASSERT_FALSE(bytes.empty());
        bytes.resize(bytes.size() / 2);
        writeBytes(p, bytes);
    }

    std::unique_ptr<System> fresh = makeSystem();
    fresh->setCheckpointPolicy(
        tinyCadenceS, scratch("scorched-b.ckpt"));
    EXPECT_FALSE(fresh->restoreCheckpoint(path));
    EXPECT_FALSE(fresh->restored());
    EXPECT_EQ(fresh->now(), 0u);
    // The run still completes — from scratch — and, because the
    // cadence matches, still reproduces the reference.
    ASSERT_TRUE(fresh->run().ok());
    EXPECT_EQ(finalStateSignature(*fresh), expected);

    removeCheckpoint(path);
    removeCheckpoint(scratch("scorched-b.ckpt"));
}

TEST(CheckpointRestore, FingerprintMismatchIsFatal)
{
    QuietLog quiet;
    const std::string path = scratch("mismatch.ckpt");
    removeCheckpoint(path);

    std::unique_ptr<System> reference = makeSystem();
    reference->setCheckpointPolicy(tinyCadenceS, path);
    ASSERT_TRUE(reference->run().ok());
    ASSERT_GE(reference->checkpointsTaken(), 1u);

    // A different workload scale is a different machine as far as
    // restore is concerned; no autosave generation can fix it.
    std::unique_ptr<System> other =
        makeSystem(CpuModel::Superscalar, /*scale=*/0.04);
    setErrorHandler(throwingErrorHandler);
    EXPECT_THROW(other->restoreCheckpoint(path), SimError);
    setErrorHandler(nullptr);
    removeCheckpoint(path);
}

TEST(CheckpointRestore, FingerprintIgnoresCpuModel)
{
    std::unique_ptr<System> inorder = makeSystem(CpuModel::InOrder);
    std::unique_ptr<System> superscalar =
        makeSystem(CpuModel::Superscalar);
    EXPECT_EQ(inorder->checkpointFingerprint(),
              superscalar->checkpointFingerprint());

    std::unique_ptr<System> scaled =
        makeSystem(CpuModel::Superscalar, /*scale=*/0.04);
    EXPECT_NE(superscalar->checkpointFingerprint(),
              scaled->checkpointFingerprint());
}

TEST(CheckpointRestore, WarmStartSwitchesCpuModel)
{
    const std::string path = scratch("warmstart.ckpt");
    removeCheckpoint(path);

    // Warm up under the fast in-order model...
    std::unique_ptr<System> warmup = makeSystem(CpuModel::InOrder);
    warmup->setCheckpointPolicy(tinyCadenceS, path);
    ASSERT_TRUE(warmup->run().ok());
    ASSERT_GE(warmup->checkpointsTaken(), 1u);

    // ...and continue under the detailed superscalar model: caches,
    // TLB, disk, OS and workload state carry over, the core starts
    // cold. Two such restores must agree bit for bit.
    std::string signatures[2];
    for (int i = 0; i < 2; ++i) {
        std::unique_ptr<System> detailed =
            makeSystem(CpuModel::Superscalar);
        detailed->setCheckpointPolicy(
            tinyCadenceS, scratch("warmstart-b.ckpt"));
        ASSERT_TRUE(detailed->restoreCheckpoint(path));
        EXPECT_TRUE(detailed->restored());
        ASSERT_TRUE(detailed->run().ok());
        // The warm-started run begins where the in-order image
        // stopped and executes real work on the new core.
        EXPECT_GT(detailed->cpu().committedInsts(), 0u);
        signatures[i] = finalStateSignature(*detailed);
    }
    EXPECT_EQ(signatures[0], signatures[1]);

    removeCheckpoint(path);
    removeCheckpoint(scratch("warmstart-b.ckpt"));
}

TEST(CheckpointRestore, PolicyValidation)
{
    QuietLog quiet;
    std::unique_ptr<System> sys = makeSystem();
    setErrorHandler(throwingErrorHandler);
    EXPECT_THROW(sys->setCheckpointPolicy(-1.0, "x.ckpt"), SimError);
    EXPECT_THROW(sys->setCheckpointPolicy(0.5, ""), SimError);
    setErrorHandler(nullptr);
    // Disabling never needs a path.
    EXPECT_NO_THROW(sys->setCheckpointPolicy(0.0, ""));
}

TEST(CheckpointRunner, FromArgsValidatesCheckpointKeys)
{
    QuietLog quiet;
    setErrorHandler(throwingErrorHandler);

    // checkpoint_every_s without out= has nowhere to autosave.
    Config no_out;
    no_out.set("checkpoint_every_s", 0.5);
    EXPECT_THROW(ExperimentSpec::fromArgs("t", no_out), SimError);

    Config negative;
    negative.set("checkpoint_every_s", -0.5);
    negative.set("out", std::string("r.json"));
    EXPECT_THROW(ExperimentSpec::fromArgs("t", negative), SimError);

    // restore= must name a readable file up front.
    Config missing;
    missing.set("restore", std::string("no-such-file.ckpt"));
    EXPECT_THROW(ExperimentSpec::fromArgs("t", missing), SimError);

    // restore= and resume=1 are different resumption mechanisms.
    const std::string ckpt = scratch("fromargs.ckpt");
    writeCheckpoint(ckpt, sampleImage());
    Config both;
    both.set("restore", ckpt);
    both.set("resume", std::int64_t(1));
    both.set("out", std::string("r.json"));
    EXPECT_THROW(ExperimentSpec::fromArgs("t", both), SimError);
    setErrorHandler(nullptr);

    // The valid combination parses.
    Config good;
    good.set("checkpoint_every_s", 0.5);
    good.set("out", std::string("r.json"));
    good.set("restore", ckpt);
    ExperimentSpec spec = ExperimentSpec::fromArgs("t", good);
    EXPECT_EQ(spec.checkpointEveryS, 0.5);
    EXPECT_EQ(spec.restorePath, ckpt);
    std::remove(ckpt.c_str());
    std::remove("r.json");
}

TEST(CheckpointRunner, RestoreNeedsASingleRunSpec)
{
    QuietLog quiet;
    const std::string ckpt = scratch("multirun.ckpt");
    writeCheckpoint(ckpt, sampleImage());

    ExperimentSpec spec;
    spec.title = "multi";
    spec.jobs = 1;
    SystemConfig config;
    spec.add(Benchmark::Jess, config, 0.03);
    spec.add(Benchmark::Db, config, 0.03);
    spec.restorePath = ckpt;
    setErrorHandler(throwingErrorHandler);
    EXPECT_THROW(runExperiment(spec), SimError);
    setErrorHandler(nullptr);
    std::remove(ckpt.c_str());
}
