/**
 * @file
 * Unit tests for the streaming JSON writer: nesting, escaping,
 * deterministic number formatting, compact mode, and misuse panics.
 */

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "core/json_writer.hh"
#include "sim/logging.hh"

using namespace softwatt;

TEST(JsonWriter, CompactNestedDocument)
{
    std::ostringstream out;
    {
        JsonWriter w(out, 0);
        w.beginObject();
        w.member("a", 1);
        w.key("b");
        w.beginArray();
        w.value(1);
        w.value(2);
        w.endArray();
        w.key("c");
        w.beginObject();
        w.member("d", "x");
        w.endObject();
        w.endObject();
    }
    EXPECT_EQ(out.str(), "{\"a\":1,\"b\":[1,2],\"c\":{\"d\":\"x\"}}");
}

TEST(JsonWriter, IndentedNestedDocument)
{
    std::ostringstream out;
    {
        JsonWriter w(out, 2);
        w.beginObject();
        w.member("a", 1);
        w.key("b");
        w.beginArray();
        w.value(true);
        w.endArray();
        w.endObject();
    }
    EXPECT_EQ(out.str(),
              "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
}

TEST(JsonWriter, EmptyContainersStayOnOneLine)
{
    std::ostringstream out;
    {
        JsonWriter w(out, 2);
        w.beginObject();
        w.key("empty_obj");
        w.beginObject();
        w.endObject();
        w.key("empty_arr");
        w.beginArray();
        w.endArray();
        w.endObject();
    }
    EXPECT_EQ(out.str(),
              "{\n  \"empty_obj\": {},\n  \"empty_arr\": []\n}");
}

TEST(JsonWriter, StringEscaping)
{
    std::ostringstream out;
    {
        JsonWriter w(out, 0);
        w.value(std::string("q\" b\\ n\n r\r t\t c") + '\x01');
    }
    EXPECT_EQ(out.str(),
              "\"q\\\" b\\\\ n\\n r\\r t\\t c\\u0001\"");
}

TEST(JsonWriter, NumberFormattingIsShortestRoundTrip)
{
    auto render = [](double d) {
        std::ostringstream out;
        JsonWriter w(out, 0);
        w.value(d);
        return out.str();
    };
    EXPECT_EQ(render(0.5), "0.5");
    EXPECT_EQ(render(0.1), "0.1");
    EXPECT_EQ(render(3.0), "3");
    EXPECT_EQ(render(-2.25), "-2.25");
    // Round-trip: parse back what was written.
    double tricky = 0.1 + 0.2;
    EXPECT_EQ(std::stod(render(tricky)), tricky);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    std::ostringstream out;
    {
        JsonWriter w(out, 0);
        w.beginArray();
        w.value(std::nan(""));
        w.value(std::numeric_limits<double>::infinity());
        w.valueNull();
        w.endArray();
    }
    EXPECT_EQ(out.str(), "[null,null,null]");
}

TEST(JsonWriter, IntegerWidths)
{
    std::ostringstream out;
    {
        JsonWriter w(out, 0);
        w.beginArray();
        w.value(std::int64_t(-9007199254740993LL));
        w.value(std::uint64_t(18446744073709551615ULL));
        w.value(unsigned(7));
        w.endArray();
    }
    EXPECT_EQ(out.str(),
              "[-9007199254740993,18446744073709551615,7]");
}

TEST(JsonWriter, MisusePanics)
{
    setErrorHandler(throwingErrorHandler);
    std::ostringstream out;
    {
        JsonWriter w(out, 0);
        w.beginObject();
        // Value without a key inside an object.
        EXPECT_THROW(w.value(1), SimError);
        // Closing the wrong container kind.
        EXPECT_THROW(w.endArray(), SimError);
        w.endObject();
        // Second root value.
        EXPECT_THROW(w.beginObject(), SimError);
    }
    {
        JsonWriter w(out, 0);
        // key() at the root (outside any object).
        EXPECT_THROW(w.key("a"), SimError);
        w.beginObject();
        w.key("pending");
        EXPECT_THROW(w.key("again"), SimError);
        EXPECT_THROW(w.endObject(), SimError);  // key still pending
        w.value(1);
        w.endObject();
    }
    setErrorHandler(nullptr);
}
