/**
 * @file
 * Unit tests for the worker pool underneath the experiment runner:
 * submission ordering, exception propagation through futures, and
 * destructor shutdown with work still queued.
 */

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/thread_pool.hh"

using namespace softwatt;

TEST(ThreadPool, SubmitReturnsFutureValue)
{
    ThreadPool pool(2);
    auto fut = pool.submit([] { return 42; });
    EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SingleThreadRunsJobsInSubmissionOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> done;
    for (int i = 0; i < 16; ++i)
        done.push_back(pool.submit([&order, i] { order.push_back(i); }));
    for (auto &f : done)
        f.get();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(bad.get(), std::runtime_error);

    // The worker survives a throwing job.
    auto good = pool.submit([] { return 7; });
    EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, DestructorDrainsQueuedWork)
{
    std::atomic<int> executed{0};
    {
        ThreadPool pool(1);
        // The first job blocks the lone worker so the rest are still
        // queued when the destructor runs.
        pool.submit([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            ++executed;
        });
        for (int i = 0; i < 8; ++i)
            pool.submit([&] { ++executed; });
    }
    EXPECT_EQ(executed.load(), 9);
}

TEST(ThreadPool, CompletedJobsReachesSubmittedCount)
{
    ThreadPool pool(2);
    std::vector<std::future<void>> done;
    for (int i = 0; i < 5; ++i)
        done.push_back(pool.submit([] {}));
    for (auto &f : done)
        f.get();
    // The counter is bumped just after each job finishes; the futures
    // become ready first, so give the workers a moment.
    for (int spin = 0; pool.completedJobs() < 5 && spin < 1000; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(pool.completedJobs(), 5u);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    auto fut = pool.submit([] { return 1; });
    EXPECT_EQ(fut.get(), 1);
}

TEST(ThreadPool, DefaultThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

TEST(ThreadPoolStress, ManyShortJobsWithExceptionsAndEarlyExit)
{
    // TSan-targeted stress: many tiny jobs racing across workers,
    // a regular sprinkling of throwing jobs, only half the futures
    // drained in-test — the destructor must cleanly finish the rest.
    constexpr int numJobs = 500;
    std::atomic<int> succeeded{0};
    std::vector<std::future<int>> futures;
    {
        ThreadPool pool(4);
        futures.reserve(numJobs);
        for (int i = 0; i < numJobs; ++i) {
            futures.push_back(pool.submit([i, &succeeded]() -> int {
                if (i % 7 == 3)
                    throw std::runtime_error("synthetic failure");
                ++succeeded;
                return i;
            }));
        }
        // Drain only the first half while the pool is still alive.
        for (int i = 0; i < numJobs / 2; ++i) {
            if (i % 7 == 3) {
                EXPECT_THROW(futures[std::size_t(i)].get(),
                             std::runtime_error);
            } else {
                EXPECT_EQ(futures[std::size_t(i)].get(), i);
            }
        }
    }
    // The destructor drained the remainder: every future is ready.
    for (int i = numJobs / 2; i < numJobs; ++i) {
        if (i % 7 == 3) {
            EXPECT_THROW(futures[std::size_t(i)].get(),
                         std::runtime_error);
        } else {
            EXPECT_EQ(futures[std::size_t(i)].get(), i);
        }
    }
    int expected_failures = 0;
    for (int i = 0; i < numJobs; ++i)
        expected_failures += (i % 7 == 3);
    EXPECT_EQ(succeeded.load(), numJobs - expected_failures);
}
