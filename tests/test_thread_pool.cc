/**
 * @file
 * Unit tests for the worker pool underneath the experiment runner:
 * submission ordering, exception propagation through futures, and
 * destructor shutdown with work still queued.
 */

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/thread_pool.hh"

using namespace softwatt;

TEST(ThreadPool, SubmitReturnsFutureValue)
{
    ThreadPool pool(2);
    auto fut = pool.submit([] { return 42; });
    EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SingleThreadRunsJobsInSubmissionOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> done;
    for (int i = 0; i < 16; ++i)
        done.push_back(pool.submit([&order, i] { order.push_back(i); }));
    for (auto &f : done)
        f.get();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(bad.get(), std::runtime_error);

    // The worker survives a throwing job.
    auto good = pool.submit([] { return 7; });
    EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, DestructorDrainsQueuedWork)
{
    std::atomic<int> executed{0};
    {
        ThreadPool pool(1);
        // The first job blocks the lone worker so the rest are still
        // queued when the destructor runs.
        pool.submit([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            ++executed;
        });
        for (int i = 0; i < 8; ++i)
            pool.submit([&] { ++executed; });
    }
    EXPECT_EQ(executed.load(), 9);
}

TEST(ThreadPool, CompletedJobsReachesSubmittedCount)
{
    ThreadPool pool(2);
    std::vector<std::future<void>> done;
    for (int i = 0; i < 5; ++i)
        done.push_back(pool.submit([] {}));
    for (auto &f : done)
        f.get();
    // The counter is bumped just after each job finishes; the futures
    // become ready first, so give the workers a moment.
    for (int spin = 0; pool.completedJobs() < 5 && spin < 1000; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(pool.completedJobs(), 5u);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    auto fut = pool.submit([] { return 1; });
    EXPECT_EQ(fut.get(), 1);
}

TEST(ThreadPool, DefaultThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

TEST(ThreadPoolStress, ManyShortJobsWithExceptionsAndEarlyExit)
{
    // TSan-targeted stress: many tiny jobs racing across workers,
    // a regular sprinkling of throwing jobs, only half the futures
    // drained in-test — the destructor must cleanly finish the rest.
    constexpr int numJobs = 500;
    std::atomic<int> succeeded{0};
    std::vector<std::future<int>> futures;
    {
        ThreadPool pool(4);
        futures.reserve(numJobs);
        for (int i = 0; i < numJobs; ++i) {
            futures.push_back(pool.submit([i, &succeeded]() -> int {
                if (i % 7 == 3)
                    throw std::runtime_error("synthetic failure");
                ++succeeded;
                return i;
            }));
        }
        // Drain only the first half while the pool is still alive.
        for (int i = 0; i < numJobs / 2; ++i) {
            if (i % 7 == 3) {
                EXPECT_THROW(futures[std::size_t(i)].get(),
                             std::runtime_error);
            } else {
                EXPECT_EQ(futures[std::size_t(i)].get(), i);
            }
        }
    }
    // The destructor drained the remainder: every future is ready.
    for (int i = numJobs / 2; i < numJobs; ++i) {
        if (i % 7 == 3) {
            EXPECT_THROW(futures[std::size_t(i)].get(),
                         std::runtime_error);
        } else {
            EXPECT_EQ(futures[std::size_t(i)].get(), i);
        }
    }
    int expected_failures = 0;
    for (int i = 0; i < numJobs; ++i)
        expected_failures += (i % 7 == 3);
    EXPECT_EQ(succeeded.load(), numJobs - expected_failures);
}

TEST(ThreadPool, CancelPendingDiscardsQueuedJobsOnly)
{
    std::atomic<int> executed{0};
    std::atomic<bool> started{false};
    std::atomic<bool> release{false};
    ThreadPool pool(1);

    // Occupy the lone worker so everything else stays queued.
    auto running = pool.submit([&] {
        started = true;
        while (!release.load())
            std::this_thread::yield();
        ++executed;
        return 1;
    });
    // Don't race the worker's dequeue: only once the blocking job is
    // running is "everything queued after it" well-defined.
    while (!started.load())
        std::this_thread::yield();

    std::vector<std::future<int>> queued;
    for (int i = 0; i < 8; ++i) {
        queued.push_back(pool.submit([&] {
            ++executed;
            return 2;
        }));
    }

    // All eight are still pending; cancel discards exactly them.
    std::size_t dropped = pool.cancelPending();
    EXPECT_EQ(dropped, 8u);

    release = true;
    EXPECT_EQ(running.get(), 1);  // in-flight work is never touched

    // Discarded jobs surface as broken promises, not hangs.
    for (auto &f : queued)
        EXPECT_THROW(f.get(), std::future_error);
    EXPECT_EQ(executed.load(), 1);

    // The pool remains usable after a drain.
    auto after = pool.submit([] { return 3; });
    EXPECT_EQ(after.get(), 3);
}

TEST(ThreadPool, CancelPendingOnIdlePoolIsANoOp)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.cancelPending(), 0u);
    auto f = pool.submit([] { return 5; });
    EXPECT_EQ(f.get(), 5);
}

TEST(ThreadPool, TrySubmitWithoutLimitBehavesLikeSubmit)
{
    ThreadPool pool(2);
    auto maybe = pool.trySubmit([] { return 7; });
    ASSERT_TRUE(maybe.has_value());
    EXPECT_EQ(maybe->get(), 7);
}

TEST(ThreadPool, TrySubmitShedsAtThePendingBound)
{
    std::atomic<bool> started{false};
    std::atomic<bool> release{false};
    ThreadPool pool(1);
    pool.setPendingLimit(2);

    // Occupy the lone worker so subsequent jobs stay pending.
    auto running = pool.submit([&] {
        started = true;
        while (!release.load())
            std::this_thread::yield();
        return 0;
    });
    while (!started.load())
        std::this_thread::yield();

    auto first = pool.trySubmit([] { return 1; });
    auto second = pool.trySubmit([] { return 2; });
    ASSERT_TRUE(first.has_value());
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(pool.pendingJobs(), 2u);

    // The bound is reached: trySubmit fails fast, nothing enqueued.
    auto rejected = pool.trySubmit([] { return 3; });
    EXPECT_FALSE(rejected.has_value());
    EXPECT_EQ(pool.pendingJobs(), 2u);

    // submit() ignores the bound (unbounded legacy semantics).
    auto forced = pool.submit([] { return 4; });
    EXPECT_EQ(pool.pendingJobs(), 3u);

    release = true;
    EXPECT_EQ(running.get(), 0);
    EXPECT_EQ(first->get(), 1);
    EXPECT_EQ(second->get(), 2);
    EXPECT_EQ(forced.get(), 4);

    // With the queue drained, trySubmit admits again.
    auto after = pool.trySubmit([] { return 5; });
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(after->get(), 5);
}

TEST(ThreadPool, PendingLimitZeroMeansUnlimited)
{
    std::atomic<bool> started{false};
    std::atomic<bool> release{false};
    ThreadPool pool(1);
    pool.setPendingLimit(1);

    auto running = pool.submit([&] {
        started = true;
        while (!release.load())
            std::this_thread::yield();
        return 0;
    });
    while (!started.load())
        std::this_thread::yield();

    ASSERT_TRUE(pool.trySubmit([] { return 1; }).has_value());
    EXPECT_FALSE(pool.trySubmit([] { return 2; }).has_value());

    // Lifting the limit re-admits immediately.
    pool.setPendingLimit(0);
    auto admitted = pool.trySubmit([] { return 3; });
    ASSERT_TRUE(admitted.has_value());

    release = true;
    EXPECT_EQ(running.get(), 0);
    EXPECT_EQ(admitted->get(), 3);
}
