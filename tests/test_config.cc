/**
 * @file
 * Unit tests for the typed configuration store.
 */

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sim/logging.hh"

using namespace softwatt;

TEST(Config, DefaultsWhenAbsent)
{
    Config c;
    EXPECT_EQ(c.getInt("x", 7), 7);
    EXPECT_DOUBLE_EQ(c.getDouble("y", 2.5), 2.5);
    EXPECT_TRUE(c.getBool("z", true));
    EXPECT_EQ(c.getString("s", "abc"), "abc");
    EXPECT_FALSE(c.has("x"));
}

TEST(Config, SetAndGetTypes)
{
    Config c;
    c.set("i", std::int64_t(42));
    c.set("d", 3.25);
    c.set("b", true);
    c.set("s", std::string("hello"));
    EXPECT_EQ(c.getInt("i", 0), 42);
    EXPECT_DOUBLE_EQ(c.getDouble("d", 0), 3.25);
    EXPECT_TRUE(c.getBool("b", false));
    EXPECT_EQ(c.getString("s", ""), "hello");
    EXPECT_TRUE(c.has("i"));
}

TEST(Config, IntParsesHex)
{
    Config c;
    c.set("addr", std::string("0x40"));
    EXPECT_EQ(c.getInt("addr", 0), 64);
}

TEST(Config, BoolAliases)
{
    Config c;
    c.set("a", std::string("1"));
    c.set("b", std::string("no"));
    c.set("d", std::string("yes"));
    EXPECT_TRUE(c.getBool("a", false));
    EXPECT_FALSE(c.getBool("b", true));
    EXPECT_TRUE(c.getBool("d", false));
}

TEST(Config, ParseAssignment)
{
    Config c;
    EXPECT_TRUE(c.parseAssignment("cache.size=64"));
    EXPECT_EQ(c.getInt("cache.size", 0), 64);
    EXPECT_FALSE(c.parseAssignment("no-equals-sign"));
    EXPECT_FALSE(c.parseAssignment("=value"));
    // Value containing '=' keeps the remainder.
    EXPECT_TRUE(c.parseAssignment("k=a=b"));
    EXPECT_EQ(c.getString("k", ""), "a=b");
}

TEST(Config, MergeOverwrites)
{
    Config base, over;
    base.set("a", std::int64_t(1));
    base.set("b", std::int64_t(2));
    over.set("b", std::int64_t(20));
    over.set("c", std::int64_t(30));
    base.merge(over);
    EXPECT_EQ(base.getInt("a", 0), 1);
    EXPECT_EQ(base.getInt("b", 0), 20);
    EXPECT_EQ(base.getInt("c", 0), 30);
}

TEST(Config, KeysSorted)
{
    Config c;
    c.set("zebra", std::int64_t(1));
    c.set("alpha", std::int64_t(2));
    auto keys = c.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "alpha");
    EXPECT_EQ(keys[1], "zebra");
}

TEST(Config, UnusedKeysReportsNeverReadKeys)
{
    Config c;
    c.set("cache.size", std::int64_t(64));
    c.set("cahe.sise", std::int64_t(32)); // typo: never read
    c.set("scale", 0.5);
    (void)c.getInt("cache.size", 0);
    (void)c.getDouble("scale", 1.0);
    auto unused = c.unusedKeys();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "cahe.sise");
}

TEST(Config, ReadOfAbsentKeyCountsAsUsedOnceSet)
{
    // Consumers read with defaults before the key exists; a later
    // set must not flag it as unused.
    Config c;
    (void)c.getInt("later", 0);
    c.set("later", std::int64_t(1));
    EXPECT_TRUE(c.unusedKeys().empty());
}

// With a throwing error handler installed, fatal() becomes a
// catchable SimError instead of exit(1), so malformed-value paths
// are testable in-process (no fork, works under sanitizers).
class ConfigErrorTest : public ::testing::Test
{
  protected:
    void SetUp() override { setErrorHandler(throwingErrorHandler); }
    void TearDown() override { setErrorHandler(nullptr); }
};

TEST_F(ConfigErrorTest, MalformedIntIsFatal)
{
    Config c;
    c.set("n", std::string("notanumber"));
    try {
        (void)c.getInt("n", 0);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Fatal);
        EXPECT_NE(std::string(e.what()).find("not an integer"),
                  std::string::npos);
    }
}

TEST_F(ConfigErrorTest, MalformedDoubleIsFatal)
{
    Config c;
    c.set("d", std::string("1.2.3"));
    EXPECT_THROW((void)c.getDouble("d", 0), SimError);
}

TEST(ConfigDeath, MalformedBoolIsFatal)
{
    Config c;
    c.set("b", std::string("maybe"));
    EXPECT_DEATH((void)c.getBool("b", false), "not a boolean");
}
