/**
 * @file
 * Tests for the Mipsy-like in-order CPU model.
 */

#include <gtest/gtest.h>

#include "cpu/inorder_cpu.hh"
#include "cpu/stream_gen.hh"
#include "mem/hierarchy.hh"
#include "sim/counter_sink.hh"

#include "stub_kernel.hh"

using namespace softwatt;

namespace
{

struct Fixture
{
    MachineParams machine;
    CounterSink sink;
    CacheHierarchy hierarchy{machine, sink};
    Tlb tlb{64};
    StubKernel kernel{&tlb};
    InOrderCpu cpu{machine, hierarchy, tlb, sink, kernel};

    void
    run(int cycles)
    {
        for (int i = 0; i < cycles; ++i)
            cpu.cycle();
    }
};

} // namespace

TEST(InOrderCpu, ExecutesScriptedOpsInOrder)
{
    Fixture f;
    f.kernel.push(aluOp(0x100));
    f.kernel.push(aluOp(0x104));
    f.kernel.push(aluOp(0x108));
    f.run(400);
    ASSERT_EQ(f.kernel.committed.size(), 3u);
    EXPECT_EQ(f.kernel.committed[0], 0x100u);
    EXPECT_EQ(f.kernel.committed[2], 0x108u);
    EXPECT_EQ(f.cpu.committedInsts(), 3u);
}

TEST(InOrderCpu, IpcAtMostOne)
{
    Fixture f;
    StreamSpec spec;
    spec.fracLoad = 0;
    spec.fracStore = 0;
    spec.fracBranch = 0;
    spec.fracFp = 0;
    spec.fracNop = 0;
    spec.kernelMapped = true;
    spec.codeFootprint = 512;  // warms the I-cache quickly
    StreamGen gen(spec, 1);
    f.kernel.fallback = &gen;
    f.run(4000);
    EXPECT_LE(f.cpu.ipc(), 1.0);
    EXPECT_GT(f.cpu.ipc(), 0.4);
}

TEST(InOrderCpu, CacheMissesStall)
{
    Fixture f;
    // Two loads to distinct cold lines: each walks to memory.
    f.kernel.push(loadOp(0x100, 0x10000));
    f.kernel.push(loadOp(0x104, 0x20000));
    int cycles = 0;
    while (f.kernel.committed.size() < 2 && cycles < 1000) {
        f.cpu.cycle();
        ++cycles;
    }
    // At least two memory walks' worth of stall cycles.
    EXPECT_GE(cycles, 2 * f.machine.memoryLatency);
}

TEST(InOrderCpu, TlbMissTrapsAndReplays)
{
    Fixture f;
    f.kernel.push(loadOp(0x100, 0x40001000, false));
    f.run(300);
    EXPECT_EQ(f.kernel.tlbMisses, 1);
    EXPECT_EQ(f.kernel.lastMissAddr, 0x40001000u);
    EXPECT_EQ(f.kernel.lastReplaySize, 1u);
    // The replayed load eventually commits exactly once.
    ASSERT_EQ(f.kernel.committed.size(), 1u);
    EXPECT_EQ(f.kernel.committed[0], 0x100u);
}

TEST(InOrderCpu, SecondAccessToSamePageHits)
{
    Fixture f;
    f.kernel.push(loadOp(0x100, 0x40001000, false));
    f.kernel.push(loadOp(0x104, 0x40001008, false));
    f.run(500);
    EXPECT_EQ(f.kernel.tlbMisses, 1);
    EXPECT_EQ(f.kernel.committed.size(), 2u);
}

TEST(InOrderCpu, SyscallNotifiesKernelAtCommit)
{
    Fixture f;
    MicroOp sys;
    sys.cls = InstClass::Syscall;
    sys.pc = 0x200;
    sys.syscallId = 42;
    f.kernel.push(aluOp(0x100));
    f.kernel.push(sys);
    f.run(400);
    ASSERT_EQ(f.kernel.syscallIds.size(), 1u);
    EXPECT_EQ(f.kernel.syscallIds[0], 42u);
}

TEST(InOrderCpu, InterruptTakenBetweenInstructions)
{
    Fixture f;
    for (int i = 0; i < 10; ++i)
        f.kernel.push(aluOp(0x100 + 4 * i));
    f.cpu.cycle();
    f.kernel.intPending = true;
    f.run(100);
    EXPECT_EQ(f.kernel.interruptsTaken, 1);
}

TEST(InOrderCpu, CountersChargedToOpMode)
{
    Fixture f;
    MicroOp op = aluOp(0x100, 2, 3);
    op.mode = ExecMode::KernelSync;
    f.kernel.push(op);
    f.run(200);
    EXPECT_EQ(f.sink.global().get(ExecMode::KernelSync,
                                  CounterId::IntAluOp),
              1u);
    EXPECT_EQ(f.sink.global().get(ExecMode::KernelSync,
                                  CounterId::CommittedInsts),
              1u);
}

TEST(InOrderCpu, StopsOnEndWhenDrained)
{
    Fixture f;
    f.kernel.endWhenEmpty = true;
    f.kernel.push(aluOp(0x100));
    bool alive = true;
    for (int i = 0; i < 100 && alive; ++i)
        alive = f.cpu.cycle();
    EXPECT_FALSE(alive);
    EXPECT_TRUE(f.cpu.pipelineEmpty());
    EXPECT_EQ(f.cpu.committedInsts(), 1u);
}

TEST(InOrderCpu, SquashAllCollectReturnsInFlight)
{
    Fixture f;
    f.kernel.push(loadOp(0x100, 0x90000));  // long memory stall
    f.cpu.cycle();
    ASSERT_FALSE(f.cpu.pipelineEmpty());
    auto replay = f.cpu.squashAllCollect();
    ASSERT_EQ(replay.size(), 1u);
    EXPECT_EQ(replay[0].pc, 0x100u);
    EXPECT_TRUE(f.cpu.pipelineEmpty());
}

TEST(InOrderCpu, NoIssueWindowActivity)
{
    // Mipsy has no rename/issue-window/LSQ: their counters stay 0,
    // which is what makes its datapath power small (Fig. 3).
    Fixture f;
    f.kernel.push(aluOp(0x100, 1, 2));
    f.kernel.push(loadOp(0x104, 0x5000));
    f.run(300);
    EXPECT_EQ(f.sink.global().total(CounterId::IssueWindowOp), 0u);
    EXPECT_EQ(f.sink.global().total(CounterId::RenameOp), 0u);
    EXPECT_EQ(f.sink.global().total(CounterId::LsqOp), 0u);
}
