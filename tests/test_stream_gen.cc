/**
 * @file
 * Tests for the synthetic instruction-stream generator.
 */

#include <gtest/gtest.h>

#include <map>

#include "cpu/stream_gen.hh"

using namespace softwatt;

namespace
{

StreamSpec
basicSpec()
{
    StreamSpec s;
    s.fracLoad = 0.2;
    s.fracStore = 0.1;
    s.fracBranch = 0.15;
    s.fracFp = 0.05;
    s.fracNop = 0.1;
    s.codeFootprint = 8 * 1024;
    s.dataFootprint = 64 * 1024;
    s.hotFootprint = 64 * 1024;
    return s;
}

std::map<InstClass, int>
histogram(StreamGen &gen, int n)
{
    std::map<InstClass, int> h;
    MicroOp op;
    for (int i = 0; i < n; ++i) {
        EXPECT_EQ(gen.next(op), FetchOutcome::Op);
        ++h[op.cls];
    }
    return h;
}

} // namespace

TEST(StreamGen, DeterministicForSeed)
{
    StreamGen a(basicSpec(), 5), b(basicSpec(), 5);
    MicroOp x, y;
    for (int i = 0; i < 5000; ++i) {
        a.next(x);
        b.next(y);
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(int(x.cls), int(y.cls));
        ASSERT_EQ(x.memAddr, y.memAddr);
        ASSERT_EQ(x.taken, y.taken);
    }
}

TEST(StreamGen, MixApproximatesSpec)
{
    StreamGen gen(basicSpec(), 7);
    auto h = histogram(gen, 120000);
    double n = 120000;
    EXPECT_NEAR(h[InstClass::Load] / n, 0.2, 0.05);
    EXPECT_NEAR(h[InstClass::Store] / n, 0.1, 0.04);
    EXPECT_NEAR(h[InstClass::Branch] / n, 0.15, 0.05);
    EXPECT_NEAR(h[InstClass::FpAlu] / n, 0.05, 0.03);
}

TEST(StreamGen, PcsStayInCodeFootprint)
{
    StreamSpec s = basicSpec();
    StreamGen gen(s, 9);
    MicroOp op;
    for (int i = 0; i < 20000; ++i) {
        gen.next(op);
        ASSERT_GE(op.pc, s.codeBase);
        ASSERT_LT(op.pc, s.codeBase + s.codeFootprint);
        if (op.isBranch() && op.taken && !op.isReturn) {
            ASSERT_GE(op.target, s.codeBase);
            ASSERT_LT(op.target, s.codeBase + s.codeFootprint);
        }
    }
}

TEST(StreamGen, DataAddressesStayInFootprint)
{
    StreamSpec s = basicSpec();
    StreamGen gen(s, 9);
    MicroOp op;
    for (int i = 0; i < 20000; ++i) {
        gen.next(op);
        if (op.isMemOp()) {
            ASSERT_GE(op.memAddr, s.dataBase);
            ASSERT_LT(op.memAddr, s.dataBase + s.dataFootprint);
        }
    }
}

TEST(StreamGen, ColdAccessesLeaveHotSet)
{
    StreamSpec s = basicSpec();
    s.dataFootprint = 32 * 1024 * 1024;
    s.hotFootprint = 64 * 1024;
    s.coldAccessProb = 0.2;
    s.spatialLocality = 0.5;
    StreamGen gen(s, 3);
    MicroOp op;
    int cold = 0, mem_ops = 0;
    for (int i = 0; i < 50000; ++i) {
        gen.next(op);
        if (op.isMemOp()) {
            ++mem_ops;
            cold += (op.memAddr >= s.dataBase + s.hotFootprint);
        }
    }
    EXPECT_GT(cold, 0);
    // Effective cold rate = (1 - spatial) * coldProb, approximately.
    EXPECT_NEAR(double(cold) / mem_ops, 0.5 * 0.2, 0.04);
}

TEST(StreamGen, NoColdAccessesWhenDisabled)
{
    StreamSpec s = basicSpec();
    s.dataFootprint = 32 * 1024 * 1024;
    s.hotFootprint = 64 * 1024;
    s.coldAccessProb = 0;
    StreamGen gen(s, 3);
    MicroOp op;
    for (int i = 0; i < 50000; ++i) {
        gen.next(op);
        if (op.isMemOp())
            ASSERT_LT(op.memAddr, s.dataBase + s.hotFootprint);
    }
}

TEST(StreamGen, ClassIsAFixedPropertyOfThePc)
{
    StreamGen gen(basicSpec(), 11);
    std::map<Addr, InstClass> seen;
    MicroOp op;
    for (int i = 0; i < 40000; ++i) {
        gen.next(op);
        auto it = seen.find(op.pc);
        if (it == seen.end())
            seen[op.pc] = op.cls;
        else
            ASSERT_EQ(int(it->second), int(op.cls)) << op.pc;
    }
}

TEST(StreamGen, ModeAndAsidTagging)
{
    StreamSpec s = basicSpec();
    s.mode = ExecMode::KernelSync;
    s.kernelMapped = true;
    s.asid = 3;
    StreamGen gen(s, 2);
    MicroOp op;
    for (int i = 0; i < 100; ++i) {
        gen.next(op);
        ASSERT_EQ(int(op.mode), int(ExecMode::KernelSync));
        ASSERT_TRUE(op.kernelMapped);
        ASSERT_EQ(op.asid, 3u);
    }
}

TEST(StreamGen, SerialChainWhenDepProbOne)
{
    StreamSpec s = basicSpec();
    s.fracLoad = s.fracStore = s.fracBranch = s.fracFp = 0;
    s.fracNop = 0;
    s.depProb = 1.0;
    s.depWindow = 1;
    StreamGen gen(s, 4);
    MicroOp prev, op;
    gen.next(prev);
    for (int i = 0; i < 200; ++i) {
        gen.next(op);
        ASSERT_EQ(op.srcA, prev.dst);
        prev = op;
    }
}

TEST(BoundedStream, EndsAfterLength)
{
    BoundedStream stream(basicSpec(), 5, 10);
    MicroOp op;
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(stream.next(op), FetchOutcome::Op);
    EXPECT_EQ(stream.next(op), FetchOutcome::End);
    EXPECT_EQ(stream.next(op), FetchOutcome::End);
}

TEST(StreamGenDeath, OverfullMixIsFatal)
{
    StreamSpec s = basicSpec();
    s.fracLoad = 0.9;
    s.fracStore = 0.9;
    EXPECT_DEATH(StreamGen(s, 1), "mix");
}
