/**
 * @file
 * Fixture tests for softwatt-analyze: each rule is driven over a
 * small in-memory source tree seeded with exactly one defect, and
 * the test asserts the finding fires with the right file, line and
 * rule — and that the corrected twin of the fixture is clean.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/analyze.hh"
#include "common/scanner.hh"

using softwatt::analyze::AnalyzerInput;
using softwatt::analyze::analyzeSources;
using softwatt::analyze::layerDag;
using softwatt::analyze::SourceText;
using softwatt::tools::Finding;

namespace
{

std::vector<Finding>
run(std::vector<SourceText> files, std::string experiments = "")
{
    AnalyzerInput input;
    input.files = std::move(files);
    input.experimentsDoc = std::move(experiments);
    return analyzeSources(input);
}

std::vector<Finding>
withRule(const std::vector<Finding> &findings, const std::string &rule)
{
    std::vector<Finding> out;
    std::copy_if(findings.begin(), findings.end(),
                 std::back_inserter(out),
                 [&rule](const Finding &f) { return f.rule == rule; });
    return out;
}

// A minimal Checkpointable class: `ticks` serialized, `stray` not.
const char *const kUnserializedMember = R"(
class Widget
{
  public:
    void saveState(ChunkWriter &out) const;
    void loadState(ChunkReader &in);

  private:
    std::uint64_t ticks = 0;
    std::uint64_t stray = 0;
};

void
Widget::saveState(ChunkWriter &out) const
{
    out.u64(ticks);
}

void
Widget::loadState(ChunkReader &in)
{
    ticks = in.u64();
}
)";

} // namespace

TEST(Analyze, FlagsUnserializedMember)
{
    auto findings = run({{"src/sim/widget.hh", kUnserializedMember}});
    auto coverage = withRule(findings, "checkpoint-coverage");
    ASSERT_EQ(coverage.size(), 1u);
    EXPECT_EQ(coverage[0].path, "src/sim/widget.hh");
    EXPECT_EQ(coverage[0].line, 10);  // the `stray` declaration
    EXPECT_NE(coverage[0].message.find("Widget::stray"),
              std::string::npos);
}

TEST(Analyze, DerivedAnnotationSilencesCoverage)
{
    std::string fixed = kUnserializedMember;
    const std::string decl = "std::uint64_t stray = 0;";
    std::size_t at = fixed.find(decl);
    ASSERT_NE(at, std::string::npos);
    fixed.insert(at + decl.size(), "  // ckpt:derived: recomputed");
    auto findings = run({{"src/sim/widget.hh", fixed}});
    EXPECT_TRUE(withRule(findings, "checkpoint-coverage").empty());
}

TEST(Analyze, CoverageSeesBothHeaderAndImpl)
{
    // Member declared in the header, referenced only in the .cc
    // body: no finding, regardless of file scan order.
    const char *hh = R"(
class Gadget
{
  public:
    void saveState(ChunkWriter &out) const;
    void loadState(ChunkReader &in);

  private:
    std::uint64_t count = 0;
};
)";
    const char *cc = R"(
void
Gadget::saveState(ChunkWriter &out) const
{
    out.u64(count);
}

void
Gadget::loadState(ChunkReader &in)
{
    count = in.u64();
}
)";
    auto findings = run({{"src/sim/gadget.cc", cc},
                         {"src/sim/gadget.hh", hh}});
    EXPECT_TRUE(withRule(findings, "checkpoint-coverage").empty());
}

TEST(Analyze, FlagsSaveLoadTypeMismatch)
{
    // save writes u64 at position 2; load reads f64 there.
    const char *source = R"(
class Meter
{
  public:
    void saveState(ChunkWriter &out) const;
    void loadState(ChunkReader &in);

  private:
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

void
Meter::saveState(ChunkWriter &out) const
{
    out.u64(a);
    out.u64(b);
}

void
Meter::loadState(ChunkReader &in)
{
    a = in.u64();
    b = std::uint64_t(in.f64());
}
)";
    auto findings = run({{"src/sim/meter.hh", source}});
    auto symmetry = withRule(findings, "save-load-symmetry");
    ASSERT_EQ(symmetry.size(), 1u);
    EXPECT_EQ(symmetry[0].path, "src/sim/meter.hh");
    EXPECT_EQ(symmetry[0].line, 24);  // the in.f64() read
    EXPECT_NE(symmetry[0].message.find("'u64'"), std::string::npos);
    EXPECT_NE(symmetry[0].message.find("'f64'"), std::string::npos);
    EXPECT_NE(symmetry[0].message.find("position 2"),
              std::string::npos);
}

TEST(Analyze, FlagsSaveLoadCountMismatch)
{
    const char *source = R"(
class Meter
{
  public:
    void saveState(ChunkWriter &out) const;
    void loadState(ChunkReader &in);

  private:
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

void
Meter::saveState(ChunkWriter &out) const
{
    out.u64(a);
    out.u64(b);
}

void
Meter::loadState(ChunkReader &in)
{
    a = in.u64();
}
)";
    auto findings = run({{"src/sim/meter.hh", source}});
    auto symmetry = withRule(findings, "save-load-symmetry");
    ASSERT_EQ(symmetry.size(), 1u);
    EXPECT_NE(symmetry[0].message.find("2 stream call(s)"),
              std::string::npos);
    EXPECT_NE(symmetry[0].message.find("load makes 1"),
              std::string::npos);
}

TEST(Analyze, DelegationCountsAsOneSlot)
{
    // member.saveState(out) on save mirrored by member.loadState(in)
    // on load: symmetric, no finding.
    const char *source = R"(
class Outer
{
  public:
    void saveState(ChunkWriter &out) const;
    void loadState(ChunkReader &in);

  private:
    Inner inner;
    std::uint64_t n = 0;
};

void
Outer::saveState(ChunkWriter &out) const
{
    out.u64(n);
    inner.saveState(out);
}

void
Outer::loadState(ChunkReader &in)
{
    n = in.u64();
    inner.loadState(in);
}
)";
    auto findings = run({{"src/sim/outer.hh", source}});
    EXPECT_TRUE(withRule(findings, "save-load-symmetry").empty());
}

TEST(Analyze, PairsFreeHelpersBySuffix)
{
    // saveThing writes u32+u64; loadThing reads u32 only.
    const char *source = R"(
void
saveThing(ChunkWriter &out, const Thing &thing)
{
    out.u32(thing.id);
    out.u64(thing.when);
}

Thing
loadThing(ChunkReader &in)
{
    Thing thing;
    thing.id = in.u32();
    return thing;
}
)";
    auto findings = run({{"src/sim/thing.cc", source}});
    auto symmetry = withRule(findings, "save-load-symmetry");
    ASSERT_EQ(symmetry.size(), 1u);
    EXPECT_NE(symmetry[0].message.find("saveThing/loadThing"),
              std::string::npos);
}

TEST(Analyze, FlagsUndocumentedConfigKey)
{
    const char *source = R"(
void
setup(const Config &config)
{
    int window = int(config.getInt("cpu.window", 64));
    double vdd = config.getDouble("tech.vdd", 3.3);
}
)";
    auto findings = run({{"src/core/setup.cc", source}},
                        "Documented keys: `tech.vdd=` only.\n");
    auto keys = withRule(findings, "config-key");
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0].path, "src/core/setup.cc");
    EXPECT_EQ(keys[0].line, 5);
    EXPECT_NE(keys[0].message.find("'cpu.window'"),
              std::string::npos);
}

TEST(Analyze, FlagsRunnerKeyMissingFromUsage)
{
    // "turbo" is read in fromArgs and documented in EXPERIMENTS.md
    // but missing from usageText.
    const char *source = R"(
ExperimentSpec
ExperimentSpec::fromArgs(const KeyValues &args)
{
    ExperimentSpec spec;
    spec.turbo = boolFlag(args, "turbo");
    return spec;
}

std::string
usageText(const char *argv0)
{
    return std::string(argv0) + " [jobs=N] [out=path]";
}
)";
    auto findings = run({{"src/core/runner_fixture.cc", source}},
                        "`turbo=` documented here.\n");
    auto keys = withRule(findings, "config-key");
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0].line, 6);
    EXPECT_NE(keys[0].message.find("usageText"), std::string::npos);
}

TEST(Analyze, FlagsUpwardInclude)
{
    const char *source = R"(
#include "sim/types.hh"
#include "os/kernel.hh"
)";
    auto findings = run({{"src/mem/rogue.hh", source}});
    auto layers = withRule(findings, "layer-dag");
    ASSERT_EQ(layers.size(), 1u);
    EXPECT_EQ(layers[0].path, "src/mem/rogue.hh");
    EXPECT_EQ(layers[0].line, 3);  // the os/kernel.hh include
    EXPECT_NE(layers[0].message.find("os/kernel.hh"),
              std::string::npos);
}

TEST(Analyze, AllowsDownwardAndSameLayerIncludes)
{
    const char *source = R"(
#include "sim/types.hh"
#include "mem/cache.hh"
#include "cpu/branch_predictor.hh"
// #include "os/kernel.hh" -- commented out, must not fire
)";
    auto findings = run({{"src/cpu/fixture.hh", source}});
    EXPECT_TRUE(withRule(findings, "layer-dag").empty());
}

TEST(Analyze, FlagsSeamBypassInDurabilityFile)
{
    const char *source = R"(
#include <cstdio>
void rotate(const std::string &path, const std::string &prev)
{
    std::rename(path.c_str(), prev.c_str());
    std::ofstream out(path);
}
)";
    auto findings = run({{"src/core/journal.cc", source}});
    auto durability = withRule(findings, "durability-io");
    ASSERT_EQ(durability.size(), 2u);
    EXPECT_EQ(durability[0].line, 5);  // the std::rename call
    EXPECT_NE(durability[0].message.find("hostRename"),
              std::string::npos);
    EXPECT_EQ(durability[1].line, 6);  // the ofstream write channel
    EXPECT_NE(durability[1].message.find("HostFile"),
              std::string::npos);
}

TEST(Analyze, SeamBypassIgnoresNonDurabilityFilesAndReads)
{
    // Raw primitives outside the declared durability set are fine
    // (runner.cc's writability probe), and std::ifstream reads never
    // match the ofstream needle.
    auto findings =
        run({{"src/core/runner.cc",
              "void probe() { std::ofstream out(\"x\"); }\n"},
             {"src/core/journal.cc",
              "void load() { std::ifstream in(\"x\"); }\n"}});
    EXPECT_TRUE(withRule(findings, "durability-io").empty());
}

TEST(Analyze, FlagsDiscardedIoStatus)
{
    const char *source = R"(
void cleanup(const std::string &tmp, const std::string &path)
{
    hostRename(tmp, path, Durability::Full);
}
)";
    auto findings = run({{"src/serve/widget.cc", source}});
    auto durability = withRule(findings, "durability-io");
    ASSERT_EQ(durability.size(), 1u);
    EXPECT_EQ(durability[0].path, "src/serve/widget.cc");
    EXPECT_EQ(durability[0].line, 4);
    EXPECT_NE(durability[0].message.find("IoStatus"),
              std::string::npos);
}

TEST(Analyze, CheckedIoStatusAndBestEffortCleanupPass)
{
    const char *source = R"(
bool swap(const std::string &tmp, const std::string &path)
{
    IoStatus moved = hostRename(tmp, path, Durability::Full);
    if (!moved)
        hostRemoveBestEffort(tmp);
    return moved.ok;
}
)";
    auto findings = run({{"src/serve/widget.cc", source}});
    EXPECT_TRUE(withRule(findings, "durability-io").empty());
}

TEST(Analyze, LayerDagMatchesDesignDoc)
{
    // The graph is acyclic and sim is its bottom.
    const auto &dag = layerDag();
    EXPECT_TRUE(dag.at("sim").empty());
    for (const auto &[layer, deps] : dag) {
        for (const std::string &dep : deps) {
            ASSERT_TRUE(dag.count(dep)) << layer << " -> " << dep;
            EXPECT_FALSE(dag.at(dep).count(layer))
                << "cycle: " << layer << " <-> " << dep;
        }
    }
}

TEST(Analyze, FindingsAreSortedAndBaselineable)
{
    std::string experiments = "nothing documented\n";
    auto findings = run(
        {{"src/mem/rogue.hh", "#include \"os/kernel.hh\"\n"},
         {"src/core/setup.cc",
          "void f(const Config &config)\n"
          "{ config.getInt(\"zz.key\", 1); }\n"}},
        experiments);
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_TRUE(std::is_sorted(findings.begin(), findings.end(),
                               softwatt::tools::findingLess));

    softwatt::tools::Suppressions baseline;
    std::string error;
    ASSERT_TRUE(baseline.parse(
        "src/mem/rogue.hh layer-dag\n"
        "src/core/setup.cc config-key\n"
        "src/gone.cc config-key  # stale\n",
        error));
    EXPECT_EQ(baseline.apply(findings), 2u);
    EXPECT_TRUE(findings.empty());
    auto unused = baseline.unusedEntries();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "src/gone.cc config-key");
}
