/**
 * @file
 * Tests for the synthetic SPEC JVM98 workload equivalents.
 */

#include <gtest/gtest.h>

#include <map>

#include "os/syscalls.hh"
#include "workload/workload.hh"

using namespace softwatt;

namespace
{

/** Drain a workload, tallying syscalls (Stall never expected). */
struct Tally
{
    std::map<std::uint16_t, int> syscalls;
    std::uint64_t ops = 0;
    std::uint64_t mem_ops = 0;
};

Tally
drain(Workload &wl, std::uint64_t cap = 50'000'000)
{
    Tally tally;
    MicroOp op;
    while (tally.ops < cap) {
        FetchOutcome outcome = wl.next(op);
        if (outcome == FetchOutcome::End)
            break;
        EXPECT_EQ(outcome, FetchOutcome::Op);
        ++tally.ops;
        tally.mem_ops += op.isMemOp();
        if (op.cls == InstClass::Syscall)
            ++tally.syscalls[op.syscallId];
    }
    return tally;
}

WorkloadSpec
tinySpec(Benchmark b)
{
    return scaleWorkload(benchmarkSpec(b), 0.02);
}

} // namespace

TEST(Workload, AllBenchmarksHaveSpecs)
{
    for (Benchmark b : allBenchmarks) {
        WorkloadSpec spec = benchmarkSpec(b);
        EXPECT_EQ(spec.name, benchmarkName(b));
        EXPECT_GT(spec.mainInsts, 1'000'000u);
        EXPECT_GT(spec.numClassFiles, 0);
    }
}

TEST(Workload, RunsToCompletionAndEnds)
{
    FileSystem fs;
    Workload wl(tinySpec(Benchmark::Jess));
    wl.registerFiles(fs);
    Tally tally = drain(wl);
    EXPECT_TRUE(wl.done());
    EXPECT_GT(tally.ops, 100'000u);
    MicroOp op;
    EXPECT_EQ(wl.next(op), FetchOutcome::End);
}

TEST(Workload, LoadPhaseOpensAndReadsEveryClassFile)
{
    FileSystem fs;
    WorkloadSpec spec = tinySpec(Benchmark::Jess);
    Workload wl(spec);
    wl.registerFiles(fs);
    Tally tally = drain(wl);
    EXPECT_GE(tally.syscalls[std::uint16_t(SyscallId::Open)],
              spec.numClassFiles);
    int reads_per_file = int((spec.classFileBytes +
                              spec.loadReadChunk - 1) /
                             spec.loadReadChunk);
    EXPECT_GE(tally.syscalls[std::uint16_t(SyscallId::Read)],
              spec.numClassFiles * reads_per_file);
}

TEST(Workload, JitPhaseIssuesCacheFlushes)
{
    FileSystem fs;
    WorkloadSpec spec = tinySpec(Benchmark::Jess);
    Workload wl(spec);
    wl.registerFiles(fs);
    Tally tally = drain(wl);
    EXPECT_GE(tally.syscalls[std::uint16_t(SyscallId::CacheFlush)],
              spec.jitFlushes / 2);
}

TEST(Workload, BenchmarkSyscallProfilesDiffer)
{
    FileSystem fs_db, fs_mtrt;
    Workload db(tinySpec(Benchmark::Db));
    Workload mtrt(tinySpec(Benchmark::Mtrt));
    db.registerFiles(fs_db);
    mtrt.registerFiles(fs_mtrt);
    Tally db_tally = drain(db);
    Tally mtrt_tally = drain(mtrt);
    // du_poll is db's signature service (paper Table 4).
    EXPECT_GT(db_tally.syscalls[std::uint16_t(SyscallId::DuPoll)], 0);
    EXPECT_EQ(mtrt_tally.syscalls[std::uint16_t(SyscallId::DuPoll)],
              0);
}

TEST(Workload, MtrtIsFpHeavy)
{
    FileSystem fs_a, fs_b;
    Workload mtrt(tinySpec(Benchmark::Mtrt));
    Workload compress(tinySpec(Benchmark::Compress));
    mtrt.registerFiles(fs_a);
    compress.registerFiles(fs_b);
    auto count_fp = [](Workload &wl) {
        std::uint64_t fp = 0, total = 0;
        MicroOp op;
        while (wl.next(op) == FetchOutcome::Op && total < 2'000'000) {
            ++total;
            fp += (op.cls == InstClass::FpAlu);
        }
        return double(fp) / double(total);
    };
    EXPECT_GT(count_fp(mtrt), 3.0 * count_fp(compress));
}

TEST(Workload, DeterministicForSameSpec)
{
    FileSystem fs_a, fs_b;
    Workload a(tinySpec(Benchmark::Javac));
    Workload b(tinySpec(Benchmark::Javac));
    a.registerFiles(fs_a);
    b.registerFiles(fs_b);
    MicroOp x, y;
    for (int i = 0; i < 200000; ++i) {
        FetchOutcome oa = a.next(x);
        FetchOutcome ob = b.next(y);
        ASSERT_EQ(int(oa), int(ob));
        if (oa != FetchOutcome::Op)
            break;
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(int(x.cls), int(y.cls));
        ASSERT_EQ(x.syscallArg, y.syscallArg);
    }
}

TEST(Workload, PremapRangesCoverTheHeap)
{
    Workload wl(benchmarkSpec(Benchmark::Jess));
    auto ranges = wl.premapRanges();
    ASSERT_FALSE(ranges.empty());
    const WorkloadSpec &spec = wl.spec();
    EXPECT_EQ(ranges[0].base, spec.mainSpec.dataBase);
    EXPECT_EQ(ranges[0].bytes, spec.mainSpec.dataFootprint);
}

TEST(Workload, ScaleWorkloadShrinksCounts)
{
    WorkloadSpec full = benchmarkSpec(Benchmark::Jack);
    WorkloadSpec half = scaleWorkload(full, 0.5);
    EXPECT_EQ(half.mainInsts, full.mainInsts / 2);
    EXPECT_EQ(half.gcPeriodInsts, full.gcPeriodInsts / 2);
    EXPECT_GE(half.classFileBytes, 4096u);
}

TEST(Workload, UserOpsCarryUserModeAndAsid)
{
    FileSystem fs;
    Workload wl(tinySpec(Benchmark::Db));
    wl.registerFiles(fs);
    MicroOp op;
    for (int i = 0; i < 100000; ++i) {
        if (wl.next(op) != FetchOutcome::Op)
            break;
        ASSERT_EQ(int(op.mode), int(ExecMode::User));
        ASSERT_FALSE(op.kernelMapped);
    }
}

TEST(WorkloadDeath, UnregisteredFilesFatal)
{
    Workload wl(tinySpec(Benchmark::Jess));
    MicroOp op;
    EXPECT_DEATH(wl.next(op), "registered");
}
