/**
 * @file
 * Tests for the streaming power pipeline and its feedback loop:
 * streaming-vs-batch bit-identity on every synthetic benchmark (with
 * and without the DVFS governor), governor stepping at budget
 * boundaries, adaptive spin-down threshold adaptation, config
 * validation of the new keys, CSV round-trips of the operating-point
 * stamps, PowerRead syscall attribution, and checkpoint/restore of
 * the meter/governor/policy state mid-run.
 */

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "sim/checkpoint.hh"
#include "core/system.hh"
#include "power/power_calculator.hh"
#include "sim/logging.hh"
#include "workload/workload.hh"

using namespace softwatt;

namespace
{

std::unique_ptr<System>
makeSystem(const SystemConfig &config, Benchmark bench,
           double scale = 0.02)
{
    auto sys = std::make_unique<System>(config);
    WorkloadSpec spec = scaleWorkload(benchmarkSpec(bench), scale);
    sys->attachWorkload(std::make_unique<Workload>(spec));
    return sys;
}

SystemConfig
smallConfig()
{
    SystemConfig config;
    config.sampleWindow = 20'000;
    return config;
}

/** Exact (==, not approximate) equality of two power traces. */
void
expectTracesIdentical(const PowerTrace &a, const PowerTrace &b)
{
    EXPECT_EQ(a.total.freqHz, b.total.freqHz);
    EXPECT_EQ(a.total.diskEnergyJ, b.total.diskEnergyJ);
    for (int m = 0; m < numExecModes; ++m) {
        EXPECT_EQ(a.total.cycles[m], b.total.cycles[m]);
        for (int c = 0; c < numComponents; ++c)
            EXPECT_EQ(a.total.energyJ[m][c], b.total.energyJ[m][c]);
    }
    ASSERT_EQ(a.windows.size(), b.windows.size());
    for (std::size_t i = 0; i < a.windows.size(); ++i) {
        const WindowPower &wa = a.windows[i];
        const WindowPower &wb = b.windows[i];
        EXPECT_EQ(wa.startTick, wb.startTick);
        EXPECT_EQ(wa.endTick, wb.endTick);
        EXPECT_EQ(wa.freqMhz, wb.freqMhz);
        EXPECT_EQ(wa.vdd, wb.vdd);
        for (int m = 0; m < numExecModes; ++m) {
            EXPECT_EQ(wa.cycles[m], wb.cycles[m]);
            EXPECT_EQ(wa.modePowerW[m], wb.modePowerW[m]);
        }
        for (int c = 0; c < numComponents; ++c) {
            EXPECT_EQ(wa.componentPowerW[c],
                      wb.componentPowerW[c]);
        }
    }
}

/** Average whole-run system power of an unconstrained run, W. */
double
unconstrainedAvgW(Benchmark bench)
{
    std::unique_ptr<System> sys =
        makeSystem(smallConfig(), bench);
    EXPECT_TRUE(sys->run().ok());
    PowerBreakdown b = sys->breakdown(false);
    return (b.cpuMemEnergyJ() + b.diskEnergyJ) / b.seconds();
}

PowerReading
readingAt(double system_w)
{
    PowerReading r;
    r.valid = true;
    r.systemPowerW = system_w;
    return r;
}

/** The full sample log rendered as CSV (a bit-exact trajectory). */
std::string
logCsv(const System &sys)
{
    std::ostringstream out;
    sys.log().writeCsv(out);
    return out.str();
}

} // namespace

TEST(PowerStream, StreamingMatchesBatchOnEveryBenchmark)
{
    for (Benchmark bench : allBenchmarks) {
        SCOPED_TRACE(benchmarkName(bench));
        std::unique_ptr<System> sys =
            makeSystem(smallConfig(), bench);
        sys->invariants().setEnabled(true);
        ASSERT_TRUE(sys->run().ok());
        ASSERT_GT(sys->log().size(), 0u);
        // The batch pass over the finished log must reproduce the
        // incrementally accumulated trace bit for bit.
        PowerTrace streaming = sys->powerTrace();
        PowerTrace batch = sys->powerCalculator().process(sys->log());
        expectTracesIdentical(streaming, batch);
    }
}

TEST(PowerStream, StreamKeepsPaceWithTheLog)
{
    std::unique_ptr<System> sys =
        makeSystem(smallConfig(), Benchmark::Jess);
    ASSERT_TRUE(sys->run().ok());
    EXPECT_EQ(sys->streamTrace().windows.size(), sys->log().size());
    // The meter published the last window.
    const PowerReading &r = sys->lastReading();
    EXPECT_TRUE(r.valid);
    EXPECT_EQ(r.windowIndex, sys->log().size() - 1);
    EXPECT_EQ(r.endTick, sys->log().all().back().endTick);
    EXPECT_GT(r.cpuMemPowerW, 0.0);
    EXPECT_GT(r.systemPowerW, 0.0);
}

TEST(PowerStream, StreamingMatchesBatchUnderClosedLoopDvfs)
{
    double avg_w = unconstrainedAvgW(Benchmark::Jess);
    ASSERT_GT(avg_w, 0.0);

    SystemConfig config = smallConfig();
    config.dvfsEnabled = true;
    config.powerBudgetW = avg_w * 0.8;  // binds: below nominal draw
    std::unique_ptr<System> sys =
        makeSystem(config, Benchmark::Jess);
    sys->invariants().setEnabled(true);
    ASSERT_TRUE(sys->run().ok());

    // The governor demonstrably moved the operating point mid-run...
    const DvfsGovernor *gov = sys->dvfsGovernor();
    ASSERT_NE(gov, nullptr);
    EXPECT_GT(gov->stepsDown(), 0u);
    EXPECT_GT(gov->deepestLevel(), 0);
    EXPECT_GT(sys->throttledCycles(), 0u);

    // ...the log records distinct operating points...
    bool saw_nominal = false;
    bool saw_scaled = false;
    for (const SampleRecord &rec : sys->log().all()) {
        if (rec.freqMhz == config.machine.freqMhz)
            saw_nominal = true;
        else if (rec.freqMhz > 0 &&
                 rec.freqMhz < config.machine.freqMhz)
            saw_scaled = true;
    }
    EXPECT_TRUE(saw_nominal);
    EXPECT_TRUE(saw_scaled);

    // ...and the batch pass still reproduces the stream exactly,
    // because the operating point travels inside the records.
    expectTracesIdentical(sys->powerTrace(),
                          sys->powerCalculator().process(sys->log()));
}

TEST(DvfsGovernor, StepsAtBudgetBoundaries)
{
    DvfsGovernor gov(200.0, 3.3, 10.0);
    EXPECT_EQ(gov.level(), 0);
    EXPECT_EQ(gov.ladderSize(), 5);
    EXPECT_DOUBLE_EQ(gov.point().freqMhz, 200.0);
    EXPECT_DOUBLE_EQ(gov.point().vdd, 3.3);

    // Invalid readings (no window yet) do nothing.
    EXPECT_FALSE(gov.observe(PowerReading{}));
    EXPECT_EQ(gov.level(), 0);

    // Over budget: one step down per window.
    EXPECT_TRUE(gov.observe(readingAt(12.0)));
    EXPECT_EQ(gov.level(), 1);
    EXPECT_DOUBLE_EQ(gov.point().freqMhz, 166.0);
    EXPECT_DOUBLE_EQ(gov.point().vdd, 3.0);
    EXPECT_EQ(gov.point().dutyNum, 166u);
    EXPECT_EQ(gov.point().dutyDen, 200u);

    // In the deadband [0.9 * budget, budget]: hold.
    EXPECT_FALSE(gov.observe(readingAt(9.5)));
    EXPECT_EQ(gov.level(), 1);

    // Exactly at the budget: hold (the budget is a ceiling).
    EXPECT_FALSE(gov.observe(readingAt(10.0)));
    EXPECT_EQ(gov.level(), 1);

    // Below the headroom threshold: step back up.
    EXPECT_TRUE(gov.observe(readingAt(8.0)));
    EXPECT_EQ(gov.level(), 0);

    // Clamped at the top: more headroom changes nothing.
    EXPECT_FALSE(gov.observe(readingAt(1.0)));
    EXPECT_EQ(gov.level(), 0);

    // Clamped at the bottom of the ladder.
    for (int i = 0; i < 10; ++i)
        gov.observe(readingAt(50.0));
    EXPECT_EQ(gov.level(), gov.ladderSize() - 1);
    EXPECT_DOUBLE_EQ(gov.point().freqMhz, 66.0);
    EXPECT_DOUBLE_EQ(gov.point().vdd, 2.1);
    EXPECT_EQ(gov.deepestLevel(), gov.ladderSize() - 1);
    EXPECT_EQ(gov.stepsDown(), 5u);
    EXPECT_EQ(gov.stepsUp(), 1u);
    EXPECT_EQ(gov.changes(), 6u);
}

TEST(DvfsGovernor, StateRoundTripsThroughChunks)
{
    DvfsGovernor gov(200.0, 3.3, 10.0);
    gov.observe(readingAt(12.0));
    gov.observe(readingAt(12.0));
    ChunkWriter w;
    gov.saveState(w);

    DvfsGovernor fresh(200.0, 3.3, 10.0);
    ChunkReader r(w.bytes(), "gov");
    fresh.loadState(r);
    r.finish();
    EXPECT_EQ(fresh.level(), gov.level());
    EXPECT_EQ(fresh.deepestLevel(), gov.deepestLevel());
    EXPECT_EQ(fresh.stepsDown(), gov.stepsDown());
    EXPECT_EQ(fresh.stepsUp(), gov.stepsUp());
}

TEST(AdaptiveSpindown, GrowsOnSpinUpsAndDecaysWhenQuiet)
{
    AdaptiveSpindownPolicy policy(2.0);
    EXPECT_DOUBLE_EQ(policy.thresholdSeconds(), 2.0);

    // No spin-ups yet: nothing changes for the first quiet windows.
    EXPECT_FALSE(policy.observe(0));
    EXPECT_DOUBLE_EQ(policy.thresholdSeconds(), 2.0);

    // A window with a spin-up doubles the threshold.
    EXPECT_TRUE(policy.observe(1));
    EXPECT_DOUBLE_EQ(policy.thresholdSeconds(), 4.0);
    EXPECT_EQ(policy.adjustments(), 1u);

    // Growth clamps at the maximum.
    EXPECT_TRUE(policy.observe(2));
    EXPECT_TRUE(policy.observe(3));
    EXPECT_DOUBLE_EQ(policy.thresholdSeconds(), 16.0);
    EXPECT_FALSE(policy.observe(4));  // already at the cap
    EXPECT_DOUBLE_EQ(policy.thresholdSeconds(), 16.0);

    // Eight consecutive quiet windows decay the threshold by 0.9.
    for (int i = 0; i < 7; ++i)
        EXPECT_FALSE(policy.observe(4));
    EXPECT_TRUE(policy.observe(4));
    EXPECT_DOUBLE_EQ(policy.thresholdSeconds(), 16.0 * 0.9);

    // A spin-up resets the quiet streak.
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(policy.observe(4));
    EXPECT_TRUE(policy.observe(5));  // grow again
    EXPECT_DOUBLE_EQ(policy.thresholdSeconds(), 16.0);
}

TEST(AdaptiveSpindown, DecayClampsAtMinimum)
{
    AdaptiveSpindownPolicy policy(0.3);
    // 8 quiet windows: 0.3 * 0.9 = 0.27; next decay clamps at 0.25.
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 8; ++i)
            policy.observe(0);
    }
    EXPECT_DOUBLE_EQ(policy.thresholdSeconds(), 0.25);
}

class PowerConfigErrorTest : public ::testing::Test
{
  protected:
    void SetUp() override { setErrorHandler(throwingErrorHandler); }
    void TearDown() override { setErrorHandler(nullptr); }
};

TEST_F(PowerConfigErrorTest, DvfsWithoutBudgetIsRejected)
{
    SystemConfig config;
    config.dvfsEnabled = true;
    try {
        config.validate();
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("power_budget_w"),
                  std::string::npos);
    }
}

TEST_F(PowerConfigErrorTest, BudgetRangeIsValidatedEagerly)
{
    SystemConfig config;
    config.powerBudgetW = -1.0;
    EXPECT_THROW(config.validate(), SimError);
    config.powerBudgetW = 1e7;
    EXPECT_THROW(config.validate(), SimError);
    config.powerBudgetW = 25.0;
    EXPECT_NO_THROW(config.validate());
}

TEST_F(PowerConfigErrorTest, AdaptiveSpindownNeedsSpindownDisk)
{
    SystemConfig config;
    config.adaptiveSpindown = true;
    try {
        config.validate();
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("disk.config=spindown"),
                  std::string::npos);
    }
    config.diskConfig = DiskConfig::spindown(2.0);
    EXPECT_NO_THROW(config.validate());
}

TEST(PowerStream, OperatingPointSurvivesCsvRoundTrip)
{
    SampleLog log;
    SampleRecord rec;
    rec.startTick = 0;
    rec.endTick = 20'000;
    rec.freqMhz = 166.0;
    rec.vdd = 3.0;
    rec.counters.addTo(ExecMode::User, CounterId::Cycles, 20'000);
    log.append(rec);
    rec.startTick = 20'000;
    rec.endTick = 40'000;
    rec.freqMhz = 0;  // nominal window
    rec.vdd = 0;
    log.append(rec);

    std::stringstream csv;
    log.writeCsv(csv);
    SampleLog parsed;
    ASSERT_TRUE(SampleLog::readCsv(csv, parsed));
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed.at(0).freqMhz, 166.0);
    EXPECT_EQ(parsed.at(0).vdd, 3.0);
    EXPECT_EQ(parsed.at(1).freqMhz, 0.0);
    EXPECT_EQ(parsed.at(1).vdd, 0.0);
    EXPECT_EQ(parsed.at(0).counters.get(ExecMode::User,
                                        CounterId::Cycles),
              20'000u);
}

TEST(PowerStream, PowerReadSyscallIsAttributedLikeAnyService)
{
    SystemConfig config = smallConfig();
    auto sys = std::make_unique<System>(config);
    WorkloadSpec spec =
        scaleWorkload(benchmarkSpec(Benchmark::Jess), 0.05);
    spec.sys.powerPollPerMInst = 50.0;
    sys->attachWorkload(std::make_unique<Workload>(spec));
    ASSERT_TRUE(sys->run().ok());

    const ServiceStats &svc =
        sys->kernel().serviceStats(ServiceKind::PowerRead);
    EXPECT_GT(svc.invocations, 0u);
    EXPECT_GT(svc.cycles, 0u);
    EXPECT_GT(svc.energyJ, 0.0);
    // The kernel snapshotted a real reading on the way.
    EXPECT_TRUE(sys->kernel().lastPowerReading().valid);
}

namespace
{

/**
 * Everything the power subsystem restores, rendered bit-exactly:
 * meter reading, governor trajectory, spin-down policy state, the
 * throttle counters, and the full sample log (operating points
 * included via the CSV).
 */
std::string
powerSignature(System &sys)
{
    std::ostringstream out;
    out << std::hexfloat;
    const PowerReading &r = sys.lastReading();
    out << r.valid << ':' << r.windowIndex << ':' << r.startTick
        << ':' << r.endTick << ':' << r.cpuMemPowerW << ':'
        << r.diskPowerW << ':' << r.systemPowerW << ':' << r.freqMhz
        << ':' << r.vdd << ';';
    if (const DvfsGovernor *gov = sys.dvfsGovernor()) {
        out << gov->level() << ':' << gov->deepestLevel() << ':'
            << gov->stepsDown() << ':' << gov->stepsUp() << ';';
    }
    if (const AdaptiveSpindownPolicy *sp = sys.spindownPolicy()) {
        out << sp->thresholdSeconds() << ':' << sp->adjustments()
            << ';';
    }
    out << sys.throttledCycles() << ';' << sys.now() << ';';
    sys.log().writeCsv(out);
    return out.str();
}

} // namespace

TEST(PowerStream, CheckpointRestoresMeterGovernorAndSpindown)
{
    const std::string path = "power_stream_midrun.ckpt";
    auto cleanup = [&path]() {
        std::remove(path.c_str());
        std::remove(checkpointPreviousGeneration(path).c_str());
        std::remove((path + ".tmp").c_str());
    };
    cleanup();

    double avg_w = unconstrainedAvgW(Benchmark::Jess);
    SystemConfig config = smallConfig();
    config.dvfsEnabled = true;
    config.powerBudgetW = avg_w * 0.8;
    config.diskConfig = DiskConfig::spindown(0.5);
    config.adaptiveSpindown = true;
    constexpr double cadence_s = 0.0003;

    // Reference: uninterrupted closed-loop run with autosaves; the
    // newest image on disk is a mid-run state.
    std::unique_ptr<System> reference =
        makeSystem(config, Benchmark::Jess, 0.03);
    reference->setCheckpointPolicy(cadence_s, path);
    ASSERT_TRUE(reference->run().ok());
    ASSERT_GE(reference->checkpointsTaken(), 2u);
    ASSERT_NE(reference->dvfsGovernor(), nullptr);
    EXPECT_GT(reference->dvfsGovernor()->stepsDown(), 0u);
    const std::string expected = powerSignature(*reference);

    // Restore into a fresh machine: the stream accumulator is
    // rebuilt from the restored log and the meter already holds the
    // checkpointed reading.
    std::unique_ptr<System> restored =
        makeSystem(config, Benchmark::Jess, 0.03);
    restored->setCheckpointPolicy(cadence_s, path);
    ASSERT_TRUE(restored->restoreCheckpoint(path));
    EXPECT_EQ(restored->streamTrace().windows.size(),
              restored->log().size());
    EXPECT_TRUE(restored->lastReading().valid);

    // Continuing reproduces the uninterrupted trajectory bit for
    // bit, governor and policy state included.
    ASSERT_TRUE(restored->run().ok());
    EXPECT_EQ(powerSignature(*restored), expected);
    cleanup();
}

TEST(PowerStream, PollingKnobDefaultsOffAndChangesNoStream)
{
    // powerPollPerMInst=0 must not perturb the RNG draw sequence:
    // the default-spec run and an explicit zero-rate run are the
    // same machine trajectory.
    std::unique_ptr<System> a =
        makeSystem(smallConfig(), Benchmark::Jess);
    ASSERT_TRUE(a->run().ok());
    SystemConfig config = smallConfig();
    auto b = std::make_unique<System>(config);
    WorkloadSpec spec =
        scaleWorkload(benchmarkSpec(Benchmark::Jess), 0.02);
    spec.sys.powerPollPerMInst = 0.0;
    b->attachWorkload(std::make_unique<Workload>(spec));
    ASSERT_TRUE(b->run().ok());
    EXPECT_EQ(a->now(), b->now());
    EXPECT_EQ(a->cpu().committedInsts(), b->cpu().committedInsts());
    EXPECT_EQ(logCsv(*a), logCsv(*b));
}
