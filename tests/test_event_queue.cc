/**
 * @file
 * Unit tests for the simulation event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace softwatt;

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextEventTick(), maxTick);
}

TEST(EventQueue, RunsEventsInTimestampOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, SameTickEventsRunInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(1); });
    q.schedule(5, [&] { order.push_back(2); });
    q.schedule(5, [&] { order.push_back(3); });
    q.advanceTo(5);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, AdvanceToStopsAtTarget)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.advanceTo(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 15u);
    EXPECT_EQ(q.nextEventTick(), 20u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    int fired = 0;
    auto id = q.schedule(10, [&] { ++fired; });
    q.schedule(11, [&] { ++fired; });
    q.cancel(id);
    q.runUntil(100);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelIsIdempotent)
{
    EventQueue q;
    auto id = q.schedule(10, [] {});
    q.cancel(id);
    q.cancel(id);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ScheduleInIsRelativeToNow)
{
    EventQueue q;
    q.advanceTo(50);
    Tick fired_at = 0;
    q.scheduleIn(25, [&] { fired_at = q.now(); });
    q.runUntil(1000);
    EXPECT_EQ(fired_at, 75u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    std::vector<Tick> fire_times;
    std::function<void()> rearm = [&] {
        fire_times.push_back(q.now());
        if (fire_times.size() < 4)
            q.scheduleIn(10, rearm);
    };
    q.schedule(10, rearm);
    q.runUntil(1000);
    EXPECT_EQ(fire_times,
              (std::vector<Tick>{10, 20, 30, 40}));
}

TEST(EventQueue, NextEventTickSkipsCancelled)
{
    EventQueue q;
    auto id = q.schedule(10, [] {});
    q.schedule(20, [] {});
    q.cancel(id);
    EXPECT_EQ(q.nextEventTick(), 20u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue q;
    for (int i = 0; i < 5; ++i)
        q.schedule(Tick(i + 1), [] {});
    q.runUntil(100);
    EXPECT_EQ(q.eventsExecuted(), 5u);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue q;
    q.advanceTo(100);
    EXPECT_DEATH(q.schedule(50, [] {}), "past");
}

TEST(EventQueueDeath, AdvancingBackwardsPanics)
{
    EventQueue q;
    q.advanceTo(100);
    EXPECT_DEATH(q.advanceTo(50), "backwards");
}
