/**
 * @file
 * Tests for the paper-suggested extensions: halt-on-idle, the
 * conditional-clocking ablation, peak-power reporting, and the
 * HP97560 timing preset.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "disk/disk.hh"

using namespace softwatt;

TEST(HaltOnIdle, SavesIdleEnergy)
{
    SystemConfig busy_cfg;
    BenchmarkRun busy = runBenchmark(Benchmark::Jess, busy_cfg, 0.05);

    SystemConfig halt_cfg;
    halt_cfg.kernelParams.haltOnIdle = true;
    BenchmarkRun halted =
        runBenchmark(Benchmark::Jess, halt_cfg, 0.05);

    // Halting removes idle-process activity energy but keeps the
    // clock base and memory background running.
    EXPECT_LT(halted.breakdown.modeEnergyJ(ExecMode::Idle),
              busy.breakdown.modeEnergyJ(ExecMode::Idle));
    EXPECT_GT(halted.breakdown.modeEnergyJ(ExecMode::Idle), 0.0);
    // The workload itself is unaffected.
    EXPECT_EQ(halted.system->kernel().workloadDone(), true);
    EXPECT_NEAR(double(halted.system->cpu().committedInsts()),
                double(busy.system->cpu().committedInsts()),
                0.05 * double(busy.system->cpu().committedInsts()));
}

TEST(HaltOnIdle, IdleModeHasNoInstructionActivity)
{
    SystemConfig halt_cfg;
    halt_cfg.kernelParams.haltOnIdle = true;
    BenchmarkRun halted =
        runBenchmark(Benchmark::Jess, halt_cfg, 0.05);
    const CounterBank &totals = halted.system->totals();
    EXPECT_EQ(totals.get(ExecMode::Idle, CounterId::CommittedInsts),
              0u);
    EXPECT_EQ(totals.get(ExecMode::Idle, CounterId::IL1Ref), 0u);
    EXPECT_GT(totals.get(ExecMode::Idle, CounterId::Cycles), 0u);
}

TEST(HaltOnIdle, ConfigKeyWorks)
{
    Config args;
    args.parseAssignment("halt_on_idle=true");
    SystemConfig config = SystemConfig::fromConfig(args);
    EXPECT_TRUE(config.kernelParams.haltOnIdle);
}

TEST(ConditionalClocking, AlwaysClockedCostsMore)
{
    SystemConfig config;
    BenchmarkRun run = runBenchmark(Benchmark::Db, config, 0.05);
    PowerCalculator gated(run.system->powerModel(), true);
    PowerCalculator always(run.system->powerModel(), false);
    double e_gated =
        gated.process(run.system->log()).total.cpuMemEnergyJ();
    double e_always =
        always.process(run.system->log()).total.cpuMemEnergyJ();
    EXPECT_GT(e_always, e_gated);
    // Only the clock component differs.
    PowerBreakdown g = gated.process(run.system->log()).total;
    PowerBreakdown a = always.process(run.system->log()).total;
    EXPECT_NEAR(a.componentEnergyJ(Component::Datapath),
                g.componentEnergyJ(Component::Datapath), 1e-12);
    EXPECT_GT(a.componentEnergyJ(Component::Clock),
              g.componentEnergyJ(Component::Clock));
}

TEST(PeakPower, PeakAtLeastAverage)
{
    SystemConfig config;
    BenchmarkRun run = runBenchmark(Benchmark::Jess, config, 0.05);
    PowerTrace trace = run.system->powerTrace();
    double avg =
        run.breakdown.cpuMemEnergyJ() / run.breakdown.seconds();
    double peak = peakWindowPowerW(trace);
    EXPECT_GE(peak, avg * 0.999);
    // And bounded by the validation maximum.
    EXPECT_LT(peak, 30.0);
}

TEST(PeakPower, EmptyTraceIsZero)
{
    PowerTrace trace;
    EXPECT_DOUBLE_EQ(peakWindowPowerW(trace), 0.0);
}

TEST(DiskTimingPresets, Hp97560IsSlower)
{
    DiskTimingSpec hp = DiskTimingSpec::hp97560();
    DiskTimingSpec toshiba = DiskTimingSpec::mk3003man();
    EXPECT_GT(hp.avgSeekMs, toshiba.avgSeekMs);
    EXPECT_LT(hp.transferMbPerS, toshiba.transferMbPerS);
    EXPECT_GT(hp.blockTransferMs(), toshiba.blockTransferMs());
}
