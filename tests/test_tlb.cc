/**
 * @file
 * Unit tests for the software-managed TLB and the page table.
 */

#include <gtest/gtest.h>

#include "mem/page_table.hh"
#include "mem/tlb.hh"

using namespace softwatt;

TEST(Tlb, MissUntilInserted)
{
    Tlb tlb(4);
    EXPECT_FALSE(tlb.lookup(1, 0x1000));
    tlb.insert(1, 0x1000);
    EXPECT_TRUE(tlb.lookup(1, 0x1000));
    EXPECT_TRUE(tlb.lookup(1, 0x1ffc));  // same page
    EXPECT_FALSE(tlb.lookup(1, 0x2000)); // next page
    EXPECT_EQ(tlb.refs(), 4u);
    EXPECT_EQ(tlb.misses(), 2u);
}

TEST(Tlb, AsidsAreIsolated)
{
    Tlb tlb(4);
    tlb.insert(1, 0x1000);
    EXPECT_FALSE(tlb.lookup(2, 0x1000));
    EXPECT_TRUE(tlb.lookup(1, 0x1000));
}

TEST(Tlb, LruReplacement)
{
    Tlb tlb(2);
    tlb.insert(1, 0x1000);
    tlb.insert(1, 0x2000);
    EXPECT_TRUE(tlb.lookup(1, 0x1000));  // refresh page 1
    tlb.insert(1, 0x3000);               // evicts page 2
    EXPECT_TRUE(tlb.lookup(1, 0x1000));
    EXPECT_FALSE(tlb.lookup(1, 0x2000));
    EXPECT_TRUE(tlb.lookup(1, 0x3000));
}

TEST(Tlb, DoubleInsertIsIdempotent)
{
    Tlb tlb(2);
    tlb.insert(1, 0x1000);
    tlb.insert(1, 0x1000);
    tlb.insert(1, 0x2000);
    EXPECT_TRUE(tlb.lookup(1, 0x1000));
    EXPECT_TRUE(tlb.lookup(1, 0x2000));
}

TEST(Tlb, InvalidateAsidOnlyDropsThatSpace)
{
    Tlb tlb(4);
    tlb.insert(1, 0x1000);
    tlb.insert(2, 0x1000);
    tlb.invalidateAsid(1);
    EXPECT_FALSE(tlb.lookup(1, 0x1000));
    EXPECT_TRUE(tlb.lookup(2, 0x1000));
}

TEST(Tlb, InvalidateAllDropsEverything)
{
    Tlb tlb(4);
    tlb.insert(1, 0x1000);
    tlb.insert(2, 0x2000);
    tlb.invalidateAll();
    EXPECT_FALSE(tlb.lookup(1, 0x1000));
    EXPECT_FALSE(tlb.lookup(2, 0x2000));
}

TEST(Tlb, CapacityIsRespected)
{
    Tlb tlb(64);
    for (int p = 0; p < 64; ++p)
        tlb.insert(1, Addr(p) * 4096);
    for (int p = 0; p < 64; ++p)
        EXPECT_TRUE(tlb.lookup(1, Addr(p) * 4096)) << p;
    tlb.insert(1, 64 * 4096);
    int hits = 0;
    for (int p = 0; p <= 64; ++p)
        hits += tlb.lookup(1, Addr(p) * 4096);
    EXPECT_EQ(hits, 64);  // exactly one got evicted
}

TEST(TlbDeath, BadParamsFatal)
{
    EXPECT_DEATH(Tlb(0), "at least one");
    EXPECT_DEATH(Tlb(4, 3000), "power of two");
}

TEST(PageTable, MapAndQuery)
{
    PageTable pt(4096);
    EXPECT_FALSE(pt.isMapped(0x1000));
    EXPECT_TRUE(pt.map(0x1000));
    EXPECT_FALSE(pt.map(0x1400));  // same page: already mapped
    EXPECT_TRUE(pt.isMapped(0x1000));
    EXPECT_TRUE(pt.isMapped(0x1fff));
    EXPECT_FALSE(pt.isMapped(0x2000));
    EXPECT_EQ(pt.mappedPages(), 1u);
}

TEST(PageTable, ClearDropsMappings)
{
    PageTable pt(4096);
    pt.map(0x1000);
    pt.clear();
    EXPECT_FALSE(pt.isMapped(0x1000));
    EXPECT_EQ(pt.mappedPages(), 0u);
}
