/**
 * @file
 * Tests for the aggregate CPU power model, including the paper's
 * R10000 maximum-power validation experiment (Section 2: SoftWatt
 * reports 25.3 W against the 30 W datasheet value).
 */

#include <gtest/gtest.h>

#include "power/cpu_power.hh"

using namespace softwatt;

TEST(CpuPowerValidation, R10000MaxPowerMatchesPaper)
{
    MachineParams r10k;  // Table 1 defaults
    CpuPowerModel model(r10k, true);
    EXPECT_NEAR(model.maxPowerW(), 25.3, 0.15);
}

TEST(CpuPowerValidation, MaxPowerBelowDatasheet)
{
    MachineParams r10k;
    CpuPowerModel model(r10k, true);
    EXPECT_LT(model.maxPowerW(), 30.0);
    EXPECT_GT(model.maxPowerW(), 20.0);
}

TEST(CpuPower, AnalyticalModelNearCalibrated)
{
    MachineParams r10k;
    CpuPowerModel cal(r10k, true);
    CpuPowerModel ana(r10k, false);
    // The raw analytical models should land within ~20% of the
    // calibrated total for the validation configuration.
    EXPECT_NEAR(ana.maxPowerW(), cal.maxPowerW(),
                0.20 * cal.maxPowerW());
}

TEST(CpuPower, AnalyticalCacheEnergiesTrackCalibrated)
{
    MachineParams r10k;
    UnitEnergies cal = UnitEnergies::calibrated();
    UnitEnergies ana =
        UnitEnergies::fromModels(Technology{}, r10k);
    EXPECT_NEAR(ana.il1ReadNj, cal.il1ReadNj, 0.35 * cal.il1ReadNj);
    EXPECT_NEAR(ana.dl1AccessNj, cal.dl1AccessNj,
                0.35 * cal.dl1AccessNj);
    EXPECT_NEAR(ana.l2AccessNj, cal.l2AccessNj,
                0.35 * cal.l2AccessNj);
}

TEST(CpuPower, PortCountsFollowMachineWidths)
{
    MachineParams m;
    m.fetchWidth = 8;
    m.issueWidth = 6;
    m.decodeWidth = 5;
    m.commitWidth = 7;
    m.intAlus = 3;
    m.fpAlus = 1;
    PortCounts p = PortCounts::fromMachine(m);
    EXPECT_DOUBLE_EQ(p.il1, 8);
    EXPECT_DOUBLE_EQ(p.rename, 5);
    EXPECT_DOUBLE_EQ(p.regRead, 12);
    EXPECT_DOUBLE_EQ(p.regWrite, 7);
    EXPECT_DOUBLE_EQ(p.issueWindow, 11);
    EXPECT_DOUBLE_EQ(p.intAlu, 3);
    EXPECT_DOUBLE_EQ(p.fpAlu, 1);
}

TEST(CpuPower, WiderMachineHasHigherMaxPower)
{
    MachineParams narrow;
    narrow.fetchWidth = narrow.decodeWidth = narrow.issueWidth =
        narrow.commitWidth = 1;
    MachineParams wide;  // 4-wide default
    CpuPowerModel n(narrow, true), w(wide, true);
    EXPECT_GT(w.maxUnitPowerW(), n.maxUnitPowerW());
}

TEST(CpuPower, CalibratedEnergiesAllPositive)
{
    UnitEnergies e = UnitEnergies::calibrated();
    for (double v :
         {e.il1ReadNj, e.dl1AccessNj, e.l2AccessNj, e.tlbSearchNj,
          e.tlbWriteNj, e.issueWindowOpNj, e.renameOpNj,
          e.regfileReadNj, e.regfileWriteNj, e.intAluOpNj,
          e.fpAluOpNj, e.lsqOpNj, e.resultBusNj, e.bhtRefNj,
          e.btbRefNj, e.rasRefNj, e.memAccessNj}) {
        EXPECT_GT(v, 0.0);
    }
}

TEST(CpuPower, IcacheDominatesDcachePerAccess)
{
    // The wide-fetch I-cache path is the power-dominant L1 access in
    // the paper's budget; the model must preserve that asymmetry.
    UnitEnergies e = UnitEnergies::calibrated();
    EXPECT_GT(e.il1ReadNj, 4.0 * e.dl1AccessNj);
}
