/**
 * @file
 * Unit tests for the counter bank, counter names, and the tag-routed
 * counter sink.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/counter_sink.hh"
#include "sim/counters.hh"

using namespace softwatt;

TEST(CounterBank, StartsAtZero)
{
    CounterBank bank;
    for (ExecMode m : allExecModes)
        for (int c = 0; c < numCounters; ++c)
            EXPECT_EQ(bank.get(m, CounterId(c)), 0u);
}

TEST(CounterBank, AddUsesCurrentMode)
{
    CounterBank bank;
    bank.setMode(ExecMode::KernelInst);
    bank.add(CounterId::IL1Ref, 3);
    EXPECT_EQ(bank.get(ExecMode::KernelInst, CounterId::IL1Ref), 3u);
    EXPECT_EQ(bank.get(ExecMode::User, CounterId::IL1Ref), 0u);
}

TEST(CounterBank, AddToExplicitMode)
{
    CounterBank bank;
    bank.addTo(ExecMode::Idle, CounterId::Cycles, 10);
    EXPECT_EQ(bank.get(ExecMode::Idle, CounterId::Cycles), 10u);
}

TEST(CounterBank, TotalSumsModes)
{
    CounterBank bank;
    bank.addTo(ExecMode::User, CounterId::DL1Ref, 4);
    bank.addTo(ExecMode::Idle, CounterId::DL1Ref, 6);
    EXPECT_EQ(bank.total(CounterId::DL1Ref), 10u);
}

TEST(CounterBank, ClearZeroesEverything)
{
    CounterBank bank;
    bank.addTo(ExecMode::User, CounterId::Cycles, 5);
    bank.clear();
    EXPECT_EQ(bank.total(CounterId::Cycles), 0u);
}

TEST(CounterBank, AccumulateIsElementWise)
{
    CounterBank a, b;
    a.addTo(ExecMode::User, CounterId::IL1Ref, 1);
    b.addTo(ExecMode::User, CounterId::IL1Ref, 2);
    b.addTo(ExecMode::Idle, CounterId::MemRef, 7);
    a.accumulate(b);
    EXPECT_EQ(a.get(ExecMode::User, CounterId::IL1Ref), 3u);
    EXPECT_EQ(a.get(ExecMode::Idle, CounterId::MemRef), 7u);
}

TEST(Counters, NamesAreUnique)
{
    std::set<std::string> names;
    for (int c = 0; c < numCounters; ++c)
        names.insert(counterName(CounterId(c)));
    EXPECT_EQ(int(names.size()), numCounters);
}

TEST(ExecModes, NamesAreUnique)
{
    std::set<std::string> names;
    for (ExecMode m : allExecModes)
        names.insert(execModeName(m));
    EXPECT_EQ(int(names.size()), numExecModes);
}

TEST(CounterSink, GlobalAlwaysReceives)
{
    CounterSink sink;
    sink.add(ExecMode::User, CounterId::IL1Ref, 2);
    EXPECT_EQ(sink.global().get(ExecMode::User, CounterId::IL1Ref),
              2u);
}

TEST(CounterSink, TaggedKernelEventsReachTheirBank)
{
    CounterSink sink;
    CounterBank bank;
    sink.registerBank(7, &bank);
    sink.add(ExecMode::KernelInst, CounterId::IntAluOp, 1, 7);
    sink.add(ExecMode::KernelSync, CounterId::IntAluOp, 1, 7);
    EXPECT_EQ(bank.get(ExecMode::KernelInst, CounterId::IntAluOp), 1u);
    EXPECT_EQ(bank.get(ExecMode::KernelSync, CounterId::IntAluOp), 1u);
    sink.unregisterBank(7);
}

TEST(CounterSink, UserAndIdleEventsAreNotForwarded)
{
    CounterSink sink;
    CounterBank bank;
    sink.registerBank(7, &bank);
    sink.add(ExecMode::User, CounterId::IntAluOp, 1, 7);
    sink.add(ExecMode::Idle, CounterId::IntAluOp, 1, 7);
    EXPECT_EQ(bank.total(CounterId::IntAluOp), 0u);
}

TEST(CounterSink, WrongTagIsNotForwarded)
{
    CounterSink sink;
    CounterBank bank;
    sink.registerBank(7, &bank);
    sink.add(ExecMode::KernelInst, CounterId::IntAluOp, 1, 8);
    sink.add(ExecMode::KernelInst, CounterId::IntAluOp, 1, 0);
    EXPECT_EQ(bank.total(CounterId::IntAluOp), 0u);
}

TEST(CounterSink, TwoBanksRouteIndependently)
{
    CounterSink sink;
    CounterBank a, b;
    sink.registerBank(1, &a);
    sink.registerBank(2, &b);
    sink.add(ExecMode::KernelInst, CounterId::DL1Ref, 3, 1);
    sink.add(ExecMode::KernelInst, CounterId::DL1Ref, 5, 2);
    EXPECT_EQ(a.total(CounterId::DL1Ref), 3u);
    EXPECT_EQ(b.total(CounterId::DL1Ref), 5u);
}

TEST(CounterSink, UnregisterStopsForwarding)
{
    CounterSink sink;
    CounterBank bank;
    sink.registerBank(3, &bank);
    sink.unregisterBank(3);
    sink.add(ExecMode::KernelInst, CounterId::DL1Ref, 3, 3);
    EXPECT_EQ(bank.total(CounterId::DL1Ref), 0u);
    EXPECT_EQ(sink.liveBanks(), 0u);
}

TEST(CounterSink, CycleChargesUseCycleModeAndTag)
{
    CounterSink sink;
    CounterBank bank;
    sink.registerBank(9, &bank);
    sink.setCycleMode(ExecMode::KernelInst, 9);
    sink.addCycle();
    sink.addCycles(4);
    EXPECT_EQ(bank.get(ExecMode::KernelInst, CounterId::Cycles), 5u);
    EXPECT_EQ(sink.global().get(ExecMode::KernelInst,
                                CounterId::Cycles),
              5u);
}
