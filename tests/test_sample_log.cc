/**
 * @file
 * Unit tests for the sampled simulation log and its CSV round trip.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/sample_log.hh"

using namespace softwatt;

namespace
{

SampleRecord
makeRecord(Tick start, Tick end, std::uint64_t il1_user)
{
    SampleRecord rec;
    rec.startTick = start;
    rec.endTick = end;
    rec.counters.addTo(ExecMode::User, CounterId::IL1Ref, il1_user);
    rec.counters.addTo(ExecMode::User, CounterId::Cycles,
                       end - start);
    return rec;
}

} // namespace

TEST(SampleLog, AppendAndSize)
{
    SampleLog log;
    EXPECT_TRUE(log.empty());
    log.append(makeRecord(0, 100, 5));
    log.append(makeRecord(100, 250, 7));
    EXPECT_EQ(log.size(), 2u);
    EXPECT_EQ(log.at(1).length(), 150u);
}

TEST(SampleLog, TotalsSumWindows)
{
    SampleLog log;
    log.append(makeRecord(0, 100, 5));
    log.append(makeRecord(100, 250, 7));
    CounterBank totals = log.totals();
    EXPECT_EQ(totals.get(ExecMode::User, CounterId::IL1Ref), 12u);
    EXPECT_EQ(log.totalCycles(), 250u);
}

TEST(SampleLog, CsvRoundTrip)
{
    SampleLog log;
    SampleRecord rec = makeRecord(0, 1000, 42);
    rec.counters.addTo(ExecMode::KernelSync, CounterId::IntAluOp, 9);
    rec.counters.addTo(ExecMode::Idle, CounterId::MemRef, 3);
    log.append(rec);
    log.append(makeRecord(1000, 2000, 17));

    std::stringstream buffer;
    log.writeCsv(buffer);

    SampleLog loaded;
    ASSERT_TRUE(SampleLog::readCsv(buffer, loaded));
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.at(0).startTick, 0u);
    EXPECT_EQ(loaded.at(0).endTick, 1000u);
    EXPECT_EQ(loaded.at(0).counters.get(ExecMode::User,
                                        CounterId::IL1Ref),
              42u);
    EXPECT_EQ(loaded.at(0).counters.get(ExecMode::KernelSync,
                                        CounterId::IntAluOp),
              9u);
    EXPECT_EQ(loaded.at(0).counters.get(ExecMode::Idle,
                                        CounterId::MemRef),
              3u);
    EXPECT_EQ(loaded.at(1).counters.get(ExecMode::User,
                                        CounterId::IL1Ref),
              17u);
}

TEST(SampleLog, CsvHeaderListsAllCounters)
{
    SampleLog log;
    std::stringstream buffer;
    log.writeCsv(buffer);
    std::string header;
    std::getline(buffer, header);
    for (int c = 0; c < numCounters; ++c) {
        EXPECT_NE(header.find(counterName(CounterId(c))),
                  std::string::npos)
            << counterName(CounterId(c));
    }
}

TEST(SampleLog, ReadCsvRejectsEmptyInput)
{
    std::stringstream empty;
    SampleLog out;
    EXPECT_FALSE(SampleLog::readCsv(empty, out));
}
