/**
 * @file
 * Unit tests for the RAM/CAM/FU/bus/clock/memory/pad energy models.
 */

#include <gtest/gtest.h>

#include "power/array_models.hh"

using namespace softwatt;

TEST(ArrayModel, MorePortsMoreEnergy)
{
    Technology tech;
    ArrayGeometry few{64, 64, 2, 512};
    ArrayGeometry many{64, 64, 9, 512};
    EXPECT_GT(ArrayEnergyModel(tech, many).readEnergyNj(),
              ArrayEnergyModel(tech, few).readEnergyNj());
}

TEST(ArrayModel, WiderRowsMoreEnergy)
{
    Technology tech;
    ArrayGeometry narrow{64, 8, 2, 512};
    ArrayGeometry wide{64, 64, 2, 512};
    EXPECT_GT(ArrayEnergyModel(tech, wide).readEnergyNj(),
              ArrayEnergyModel(tech, narrow).readEnergyNj());
}

TEST(ArrayModel, SubbankingCapsRowCost)
{
    Technology tech;
    ArrayGeometry small{512, 32, 1, 512};
    ArrayGeometry huge{4096, 32, 1, 512};
    // Past the subbank limit, bitline height stops growing.
    EXPECT_NEAR(ArrayEnergyModel(tech, huge).readEnergyNj(),
                ArrayEnergyModel(tech, small).readEnergyNj(), 1e-9);
}

TEST(ArrayModelDeath, NonPositiveGeometryFatal)
{
    Technology tech;
    ArrayGeometry bad{0, 64, 2, 512};
    EXPECT_DEATH(ArrayEnergyModel(tech, bad), "positive");
}

TEST(CamModel, MoreEntriesMoreSearchEnergy)
{
    Technology tech;
    CamGeometry small{32, 27, 40, 4.0};
    CamGeometry big{128, 27, 40, 4.0};
    EXPECT_GT(CamEnergyModel(tech, big).searchEnergyNj(),
              CamEnergyModel(tech, small).searchEnergyNj());
}

TEST(CamModel, WiderTagsMoreSearchEnergy)
{
    Technology tech;
    CamGeometry narrow{64, 8, 40, 4.0};
    CamGeometry wide{64, 40, 40, 4.0};
    EXPECT_GT(CamEnergyModel(tech, wide).searchEnergyNj(),
              CamEnergyModel(tech, narrow).searchEnergyNj());
}

TEST(CamModel, WriteEnergyPositive)
{
    Technology tech;
    CamGeometry g{64, 27, 40, 4.0};
    EXPECT_GT(CamEnergyModel(tech, g).writeEnergyNj(), 0.0);
}

TEST(FunctionalUnit, EnergyScalesWithCapacitance)
{
    Technology tech;
    FunctionalUnitEnergyModel small(tech, 50.0);
    FunctionalUnitEnergyModel big(tech, 200.0);
    EXPECT_NEAR(big.opEnergyNj() / small.opEnergyNj(), 4.0, 1e-9);
}

TEST(ResultBus, TransferEnergyPositive)
{
    Technology tech;
    EXPECT_GT(ResultBusEnergyModel(tech, 41.0).transferEnergyNj(),
              0.0);
}

TEST(ClockModel, ActivityScalesBetweenBaseAndMax)
{
    Technology tech;
    ClockEnergyModel clock(tech);
    double base = clock.basePowerW();
    double max = clock.maxPowerW();
    EXPECT_GT(base, 0.0);
    EXPECT_GT(max, base);
    double half = clock.powerW(0.5);
    EXPECT_GT(half, base);
    EXPECT_LT(half, max);
    EXPECT_NEAR(half - base, (max - base) * 0.5, 1e-9);
}

TEST(ClockModel, ActivityIsClamped)
{
    Technology tech;
    ClockEnergyModel clock(tech);
    EXPECT_DOUBLE_EQ(clock.powerW(-1.0), clock.basePowerW());
    EXPECT_DOUBLE_EQ(clock.powerW(2.0), clock.maxPowerW());
}

TEST(ClockModel, PaperPointNearCalibration)
{
    // ~0.8 W base + ~4.9 W load at 0.35 um / 3.3 V / 200 MHz.
    Technology tech;
    ClockEnergyModel clock(tech);
    EXPECT_NEAR(clock.basePowerW(), 0.8, 0.15);
    EXPECT_NEAR(clock.maxPowerW(), 5.7, 0.4);
}

TEST(MemoryModel, Accessors)
{
    MemoryEnergyModel mem(60.0, 0.45);
    EXPECT_DOUBLE_EQ(mem.accessEnergyNj(), 60.0);
    EXPECT_DOUBLE_EQ(mem.backgroundPowerW(), 0.45);
}

TEST(PadModel, MaxPowerMatchesHandComputation)
{
    Technology tech;
    PadEnergyModel pads(tech, 192, 50.0, 0.5);
    // 192 pins * 50 pF * Vdd^2 * f * 0.5
    double expected =
        192 * 50e-12 * tech.vddSq() * tech.freqHz() * 0.5;
    EXPECT_NEAR(pads.maxPowerW(), expected, 1e-9);
    EXPECT_NEAR(pads.maxPowerW(), 10.45, 0.2);
}
