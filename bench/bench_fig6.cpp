/**
 * @file
 * Figure 6: average power per software mode (user / kernel / sync /
 * idle), stacked by hardware component, averaged over the six
 * benchmarks. Paper shape: user highest, then sync, kernel, idle;
 * the L1 I-cache dominates user-mode power.
 */

#include <iostream>

#include "core/report.hh"
#include "core/runner.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    double scale = args.getDouble("scale", 0.5);
    ExperimentSpec spec = ExperimentSpec::fromArgs("fig6", args);
    spec.addSuite(SystemConfig::fromConfig(args), scale);

    std::cout << "=== Figure 6: Average Power per Mode ===\n"
                 "(six-benchmark average, scale " << scale
              << ")\n\n";

    ExperimentResult result = runExperiment(spec);
    printModePower(std::cout, "Average power by mode and component",
                   averageBreakdowns(result.breakdowns()));
    std::cout << "\nPaper shape: user > sync > kernel > idle; "
                 "L1 I-cache and clock dominate in every mode.\n";
    return result.exitCode();
}
