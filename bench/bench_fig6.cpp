/**
 * @file
 * Figure 6: average power per software mode (user / kernel / sync /
 * idle), stacked by hardware component, averaged over the six
 * benchmarks. Paper shape: user highest, then sync, kernel, idle;
 * the L1 I-cache dominates user-mode power.
 */

#include <iostream>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    Config args = parseArgs(argc, argv);
    double scale = args.getDouble("scale", 0.5);
    SystemConfig config = SystemConfig::fromConfig(args);

    std::cout << "=== Figure 6: Average Power per Mode ===\n"
                 "(six-benchmark average, scale " << scale
              << ")\n\n";

    std::vector<PowerBreakdown> breakdowns;
    for (Benchmark b : allBenchmarks) {
        BenchmarkRun run = runBenchmark(b, config, scale);
        breakdowns.push_back(run.breakdown);
        std::cout << "  [" << run.name << " done]\n";
    }
    std::cout << '\n';
    printModePower(std::cout, "Average power by mode and component",
                   averageBreakdowns(breakdowns));
    std::cout << "\nPaper shape: user > sync > kernel > idle; "
                 "L1 I-cache and clock dominate in every mode.\n";
    return 0;
}
