/**
 * @file
 * Energy-vs-performance Pareto frontier under the closed-loop DVFS
 * governor: one unconstrained baseline plus one run per power
 * budget. Tightening the budget drives the governor down the
 * voltage/frequency ladder, trading run time for energy; the
 * frontier is the curve that trade sweeps out. Checks that the
 * frontier is monotone — as the budget falls, run time never shrinks
 * and total energy never grows — and that the governor demonstrably
 * changed the operating point mid-run for at least one budget.
 *
 * Usage: bench_pareto [bench=mtrt] [scale=0.2]
 *                     [budgets=8,7,6,5] [out=pareto.json]
 */

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/runner.hh"
#include "sim/logging.hh"

using namespace softwatt;

namespace
{

std::vector<double>
parseBudgets(const std::string &text)
{
    std::vector<double> budgets;
    std::stringstream in(text);
    std::string item;
    while (std::getline(in, item, ','))
        budgets.push_back(std::stod(item));
    return budgets;
}

struct FrontierPoint
{
    std::string label;
    double seconds = 0;
    double energyJ = 0;
    const DvfsGovernor *governor = nullptr;
};

} // namespace

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    std::string bench_name = args.getString("bench", "mtrt");
    double scale = args.getDouble("scale", 0.2);
    std::vector<double> budgets =
        parseBudgets(args.getString("budgets", "8,7,6,5"));
    if (budgets.size() < 2)
        fatal("budgets= must list at least two budgets to sweep "
              "a frontier");
    for (std::size_t i = 1; i < budgets.size(); ++i) {
        if (budgets[i] >= budgets[i - 1])
            fatal("budgets= must be strictly decreasing");
    }
    ExperimentSpec spec = ExperimentSpec::fromArgs("pareto", args);
    Benchmark bench = benchmarkByName(bench_name);

    SystemConfig base_config = SystemConfig::fromConfig(args);
    spec.add(bench, base_config, scale, "unconstrained");
    for (double budget : budgets) {
        SystemConfig config = base_config;
        config.dvfsEnabled = true;
        config.powerBudgetW = budget;
        std::ostringstream variant;
        variant << budget << "W";
        spec.add(bench, config, scale, variant.str());
    }

    std::cout << "=== Energy/performance Pareto frontier ===\n("
              << bench_name << ", scale " << scale << ", "
              << budgets.size() << " budgets + baseline)\n\n";

    ExperimentResult result = runExperiment(spec);

    std::vector<FrontierPoint> frontier;
    for (std::size_t i = 0; i < result.size(); ++i) {
        const BenchmarkRun &run = result.at(i);
        if (!run.hasData()) {
            std::cout << "run " << i << " produced no data ("
                      << runOutcomeName(run.result.outcome)
                      << ")\n";
            return 1;
        }
        FrontierPoint p;
        p.label = run.variant;
        p.seconds = run.breakdown.seconds();
        p.energyJ = run.breakdown.cpuMemEnergyJ() +
                    run.breakdown.diskEnergyJ;
        p.governor = run.system->dvfsGovernor();
        frontier.push_back(p);
    }

    std::cout << std::right << std::setw(16) << "budget"
              << std::setw(14) << "time (s)" << std::setw(14)
              << "energy (J)" << std::setw(10) << "avg W"
              << std::setw(8) << "deep" << std::setw(8) << "steps"
              << '\n';
    for (const FrontierPoint &p : frontier) {
        std::cout << std::right << std::setw(16) << p.label
                  << std::setw(14) << std::scientific
                  << std::setprecision(4) << p.seconds
                  << std::setw(14) << p.energyJ << std::setw(10)
                  << std::fixed << std::setprecision(2)
                  << p.energyJ / p.seconds;
        if (p.governor) {
            std::cout << std::setw(8) << p.governor->deepestLevel()
                      << std::setw(8)
                      << p.governor->stepsDown() +
                             p.governor->stepsUp();
        } else {
            std::cout << std::setw(8) << "-" << std::setw(8) << "-";
        }
        std::cout << '\n';
    }

    // Monotonicity: as the budget tightens (left to right in the
    // frontier vector), time must not shrink and energy must not
    // grow. A hair of tolerance absorbs the discreteness of the
    // ladder (a budget that never binds reproduces the baseline).
    bool monotone = true;
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        const FrontierPoint &prev = frontier[i - 1];
        const FrontierPoint &cur = frontier[i];
        if (cur.seconds < prev.seconds * (1 - 1e-9)) {
            std::cout << "\nNOT monotone: " << cur.label
                      << " runs faster than " << prev.label << " ("
                      << cur.seconds << " s < " << prev.seconds
                      << " s)\n";
            monotone = false;
        }
        if (cur.energyJ > prev.energyJ * (1 + 1e-9)) {
            std::cout << "\nNOT monotone: " << cur.label
                      << " uses more energy than " << prev.label
                      << " (" << cur.energyJ << " J > "
                      << prev.energyJ << " J)\n";
            monotone = false;
        }
    }

    bool governed = false;
    for (const FrontierPoint &p : frontier) {
        if (p.governor && p.governor->stepsDown() > 0)
            governed = true;
    }

    std::cout << "\nfrontier monotone: "
              << (monotone ? "yes" : "NO")
              << "; governor changed frequency mid-run: "
              << (governed ? "yes" : "NO") << '\n';
    if (!monotone || !governed)
        return 1;
    return result.exitCode();
}
