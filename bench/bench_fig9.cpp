/**
 * @file
 * Figure 9: energy/performance trade-offs of disk power management.
 * Each benchmark runs under four disk configurations: the unmanaged
 * baseline, the IDLE-only disk, and spin-down thresholds of 2 s and
 * 4 s. Reports disk energy (J, paper-equivalent) and total idle
 * cycles per configuration.
 *
 * Paper shape to reproduce: IDLE-only always beats the baseline;
 * the 2 s threshold badly hurts compress/javac/mtrt/jack (spin-up
 * thrash) while jess/db are unaffected; at 4 s compress and javac
 * recover to IDLE-only behaviour, jack improves (~one spin-down pair
 * eliminated), and mtrt's energy increases with unchanged idle
 * cycles.
 */

#include <iomanip>
#include <iostream>
#include <vector>

#include "core/runner.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    double scale = args.getDouble("scale", 1.0);
    // mtrt's Figure 9 behaviour (clean STANDBY hits under both
    // thresholds) needs disk-quiet gaps longer than threshold +
    // spin-down time; its characterization-sized run is stretched so
    // its two gaps exceed 9 paper-equivalent seconds.
    double mtrt_scale = args.getDouble("mtrt_scale", 2.4);
    ExperimentSpec spec = ExperimentSpec::fromArgs("fig9", args);
    SystemConfig base = SystemConfig::fromConfig(args);

    struct ConfigRow
    {
        const char *label;
        const char *variant;
        DiskConfig disk;
    };
    std::vector<ConfigRow> configs = {
        {"Baseline", "baseline", DiskConfig::conventional()},
        {"Without Spindowns", "idle", DiskConfig::idleOnly()},
        {"With 2 Sec. Spindown", "spindown-2s",
         DiskConfig::spindown(2.0)},
        {"With 4 Sec. Spindown", "spindown-4s",
         DiskConfig::spindown(4.0)},
    };

    for (Benchmark b : allBenchmarks) {
        double run_scale =
            b == Benchmark::Mtrt ? scale * mtrt_scale : scale;
        for (const ConfigRow &c : configs) {
            SystemConfig config = base;
            config.diskConfig = c.disk;
            spec.add(b, config, run_scale, c.variant);
        }
    }

    std::cout << "=== Figure 9: Disk Energy and Idle Cycles per "
                 "Configuration ===\n(scale " << scale << ")\n\n";

    ExperimentResult result = runExperiment(spec);

    std::cout << std::left << std::setw(10) << "bench";
    for (const ConfigRow &c : configs)
        std::cout << std::right << std::setw(22) << c.label;
    std::cout << '\n';

    for (Benchmark b : allBenchmarks) {
        std::cout << std::left << std::setw(10) << benchmarkName(b);
        for (const ConfigRow &c : configs) {
            const BenchmarkRun *run = result.find(b, c.variant);
            if (!run || !run->hasData()) {
                std::cout << std::right << std::setw(22)
                          << "(no data)";
                continue;
            }
            double energy =
                c.disk.kind == DiskConfigKind::Conventional
                    ? run->system->diskEnergyConventionalJ()
                    : run->system->diskEnergyJ();
            std::cout << std::right << std::setw(20) << std::fixed
                      << std::setprecision(2) << energy << " J";
        }
        std::cout << '\n';
    }

    std::cout << "\nTotal idle cycles (paper-equivalent, i.e. x"
              << SystemConfig{}.timeScale << "):\n";
    std::cout << std::left << std::setw(10) << "bench";
    for (const ConfigRow &c : configs)
        std::cout << std::right << std::setw(22) << c.label;
    std::cout << '\n';
    for (Benchmark b : allBenchmarks) {
        std::cout << std::left << std::setw(10) << benchmarkName(b);
        for (const ConfigRow &c : configs) {
            const BenchmarkRun *run = result.find(b, c.variant);
            if (!run || !run->hasData()) {
                std::cout << std::right << std::setw(22)
                          << "(no data)";
                continue;
            }
            double idle = double(run->system->totals().get(
                ExecMode::Idle, CounterId::Cycles));
            std::cout << std::right << std::setw(22)
                      << std::scientific << std::setprecision(3)
                      << idle * SystemConfig{}.timeScale;
        }
        std::cout << '\n';
    }
    return result.exitCode();
}
