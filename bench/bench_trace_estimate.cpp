/**
 * @file
 * Section 3.3's acceleration claim: because per-invocation service
 * energy is nearly constant, kernel energy can be estimated from a
 * plain invocation trace (counts per service, as prof/truss would
 * give) times per-service mean energies — without detailed power
 * simulation — within an error margin of about 10%.
 *
 * Method: calibrate per-service mean energies on one benchmark
 * (jess), then predict every other benchmark's kernel energy from
 * its invocation counts alone and compare with the detailed result.
 */

#include <cmath>
#include <iomanip>
#include <iostream>

#include "core/runner.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    double scale = args.getDouble("scale", 0.5);
    ExperimentSpec spec =
        ExperimentSpec::fromArgs("trace-estimate", args);
    spec.addSuite(SystemConfig::fromConfig(args), scale);

    std::cout << "=== Trace-based Kernel Energy Estimation "
                 "(Section 3.3) ===\n(scale " << scale << ")\n\n";

    ExperimentResult result = runExperiment(spec);

    // Calibration on jess; the suite's other five are predicted.
    const BenchmarkRun &calib = result.run(Benchmark::Jess);
    if (!calib.hasData()) {
        std::cout << "(no data: calibration run on jess ended "
                  << runOutcomeName(calib.result.outcome)
                  << "; cannot estimate)\n";
        return result.exitCode();
    }
    std::array<double, numServices> mean_energy{};
    for (ServiceKind kind : allServices) {
        mean_energy[int(kind)] =
            calib.system->kernel().serviceStats(kind).meanEnergyJ();
    }
    std::cout << "Calibrated per-invocation means on jess.\n\n";
    std::cout << std::left << std::setw(10) << "bench"
              << std::right << std::setw(16) << "detailed (J)"
              << std::setw(16) << "estimated (J)" << std::setw(12)
              << "error (%)" << '\n';

    double worst = 0;
    for (Benchmark b :
         {Benchmark::Compress, Benchmark::Db, Benchmark::Javac,
          Benchmark::Mtrt, Benchmark::Jack}) {
        const BenchmarkRun &run = result.run(b);
        if (!run.hasData()) {
            std::cout << std::left << std::setw(10) << run.name
                      << "(no data)" << '\n';
            continue;
        }
        double detailed = 0, estimated = 0;
        for (ServiceKind kind : allServices) {
            const ServiceStats &s =
                run.system->kernel().serviceStats(kind);
            detailed += s.energyJ;
            estimated +=
                double(s.invocations) * mean_energy[int(kind)];
        }
        double err =
            detailed > 0
                ? 100.0 * (estimated - detailed) / detailed
                : 0;
        worst = std::max(worst, std::abs(err));
        std::cout << std::left << std::setw(10) << run.name
                  << std::right << std::setw(16) << std::scientific
                  << std::setprecision(4) << detailed
                  << std::setw(16) << estimated << std::setw(11)
                  << std::fixed << std::setprecision(2) << err
                  << " %" << '\n';
    }
    std::cout << "\nWorst absolute error: " << worst
              << " %  (paper claim: ~10 % margin)\n";
    return result.exitCode();
}
