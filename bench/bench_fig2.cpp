/**
 * @file
 * Figure 2: the MK3003MAN operating-mode power values and a scripted
 * walk through the state machine's transitions.
 */

#include <iostream>

#include "core/experiment.hh"
#include "disk/disk.hh"
#include "sim/event_queue.hh"

using namespace softwatt;

namespace
{

constexpr double freqHz = 200e6;
constexpr double timeScale = 100.0;

Tick
equivSeconds(double s)
{
    return Tick(s / timeScale * freqHz);
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    DiskPowerSpec power;

    std::cout << "=== Figure 2: MK3003MAN Operating Modes ===\n\n";
    std::cout << "Mode       Power (W)   [paper]\n";
    std::cout << "Sleep      " << power.sleepW << "        0.15\n";
    std::cout << "Idle       " << power.idleW << "         1.6\n";
    std::cout << "Standby    " << power.standbyW << "        0.35\n";
    std::cout << "Active     " << power.activeW << "         3.2\n";
    std::cout << "Seeking    " << power.seekW << "         4.1\n";
    std::cout << "Spin up    " << power.spinupW << "         4.2\n";
    std::cout << "Spin up/down time: " << power.spinupSeconds
              << " s\n\n";

    // Walk the state machine: IDLE -> SEEK -> ACTIVE -> IDLE ->
    // (threshold) -> SPINDOWN -> STANDBY -> (request) -> SPINUP.
    EventQueue queue;
    Disk disk(queue, freqHz, DiskConfig::spindown(2.0), timeScale);
    std::cout << "State machine walk:\n";
    std::cout << "  t=0.0s  " << diskStateName(disk.state()) << "\n";
    disk.submit(4000, 2, [](DiskIoStatus) {});
    std::cout << "  submit: " << diskStateName(disk.state()) << "\n";
    queue.runUntil(equivSeconds(1.0));
    std::cout << "  t=1.0s  " << diskStateName(disk.state())
              << " (request complete)\n";
    queue.runUntil(equivSeconds(3.5));
    std::cout << "  t=3.5s  " << diskStateName(disk.state())
              << " (2 s threshold expired)\n";
    queue.runUntil(equivSeconds(8.5));
    std::cout << "  t=8.5s  " << diskStateName(disk.state()) << "\n";
    disk.submit(9000, 1, [](DiskIoStatus) {});
    std::cout << "  submit: " << diskStateName(disk.state())
              << " (5 s spin-up penalty)\n";
    queue.runUntil(equivSeconds(15.0));
    std::cout << "  t=15s   " << diskStateName(disk.state()) << "\n";
    std::cout << "\nEnergy so far: " << disk.energyJ()
              << " J; spin-ups: " << disk.spinUps()
              << ", spin-downs: " << disk.spinDowns() << "\n";
    return 0;
}
