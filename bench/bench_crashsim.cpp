/**
 * @file
 * Crash-consistency sweep over the host-I/O seam (DESIGN.md §4k).
 *
 * Records two real durability sessions through the seam's op log:
 *
 *  1. A runner sweep under durability=full — resume journal appends
 *     with fdatasync barriers, periodic checkpoint autosaves
 *     (temp-then-rename with fsync'd directories), and the final
 *     atomic document write.
 *  2. A serve checkpoint-pool session — in-flight image writes and
 *     promote/rotate rename chains for several keys.
 *
 * It then replays EVERY op-log prefix of both sessions under every
 * CrashVariant (synced-only, everything-persisted, torn-tail) into a
 * scratch directory and runs the real recovery code over the wreck:
 * RunJournal::load, checkpoint restore with generation fallback, and
 * CheckpointPool::recover. Checked invariants:
 *
 *  - Recovery never crashes, whatever the prefix left behind.
 *  - Recovery never serves corrupt data: every journal entry that
 *    parses is byte-identical to one the reference session wrote,
 *    and every checkpoint that reads back is byte-identical to a
 *    recorded image payload.
 *  - No acknowledged answer is lost: under durability=full, a
 *    journal entry whose fdatasync barrier completed inside the
 *    prefix is present in every variant — a power cut after the ack
 *    cannot take it back.
 *  - The fully-persisted synced-only state reproduces the reference
 *    document and journal byte for byte.
 *
 * The run fails unless at least 200 distinct crash prefixes were
 * replayed (the sessions above yield several hundred).
 *
 * Keys: scale= (default 0.03), cadence_s= (default 0.0003),
 * state= (default a fresh directory under the system temp path),
 * oplog_out= (write the recorded op logs as JSONL — CI uploads this
 * artifact when the sweep fails).
 *
 * Exit status 0 only when every invariant held on every prefix.
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/experiment.hh"
#include "core/journal.hh"
#include "core/json_writer.hh"
#include "core/runner.hh"
#include "serve/checkpoint_pool.hh"
#include "sim/checkpoint.hh"
#include "sim/host_io.hh"
#include "sim/logging.hh"

using namespace softwatt;
namespace fs = std::filesystem;

namespace
{

struct Check
{
    int failures = 0;

    void
    expect(bool ok, const std::string &what)
    {
        if (ok)
            return;
        ++failures;
        std::cerr << "FAIL: " << what << "\n";
    }
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

/** Reference state captured from one recorded session. */
struct Session
{
    std::string name;
    std::vector<IoRecord> log;
    std::string journalPath;              ///< "" when none.
    std::vector<JournalEntry> refEntries; ///< Journal ground truth.
    std::string documentPath;             ///< "" when none.
    std::string documentBytes;
    /** Every complete image payload that went through an atomic
     *  checkpoint write ("<dest>.tmp" Write ops). A recovered
     *  checkpoint file must byte-match one of these. */
    std::set<std::string> imagePayloads;
    /** Atomic-rename destinations ending in ".ckpt" (autosave and
     *  pool slots): the files recovery probes. */
    std::set<std::string> checkpointPaths;
    std::vector<std::uint64_t> poolKeys;  ///< Pool sessions only.
};

/** Sync barriers on @p path inside the first @p prefix ops. */
std::size_t
ackedSyncs(const std::vector<IoRecord> &log, std::size_t prefix,
           const std::string &path)
{
    std::size_t acked = 0;
    for (std::size_t i = 0; i < prefix && i < log.size(); ++i) {
        if (log[i].kind == IoOpKind::Sync && log[i].path == path)
            ++acked;
    }
    return acked;
}

/** Harvest image payloads and checkpoint destinations from a log. */
void
harvestCheckpoints(Session &session)
{
    for (const IoRecord &op : session.log) {
        if (op.kind == IoOpKind::Write && endsWith(op.path, ".tmp"))
            session.imagePayloads.insert(op.data);
        if (op.kind == IoOpKind::Rename &&
            endsWith(op.path, ".tmp") && endsWith(op.path2, ".ckpt"))
            session.checkpointPaths.insert(op.path2);
    }
}

/**
 * Record session 1: a two-run sweep under durability=full with
 * checkpoint autosaves and a resume journal.
 */
Session
recordSweep(const std::string &root, double scale, double cadenceS)
{
    Session session;
    session.name = "runner-sweep";
    session.documentPath = root + "/sweep.json";
    session.journalPath = journalPathFor(session.documentPath);

    ExperimentSpec spec;
    spec.title = "crashsim";
    spec.jobs = 1;
    spec.jsonPath = session.documentPath;
    spec.durability = Durability::Full;
    spec.checkpointEveryS = cadenceS;
    SystemConfig config;
    config.sampleWindow = 20'000;
    spec.add(Benchmark::Jess, config, scale);
    spec.add(Benchmark::Db, config, scale);

    HostIo::instance().startRecording();
    ExperimentResult result = runExperiment(spec);
    session.log = HostIo::instance().stopRecording();

    if (result.failedRuns() != 0 || result.storageDegraded())
        fatal("crashsim: the reference sweep must run clean");
    session.refEntries = RunJournal::load(session.journalPath);
    session.documentBytes = slurp(session.documentPath);
    harvestCheckpoints(session);
    return session;
}

/**
 * Record session 2: a serve checkpoint-pool session — two keys, two
 * promoted generations each, full-durability rename chains.
 */
Session
recordPool(const std::string &root)
{
    Session session;
    session.name = "serve-pool";
    session.poolKeys = {0x00c0ffee00c0ffeeull, 0x0badcafe0badcafeull};

    std::string dir = root + "/pool";
    fs::create_directories(dir);
    HostIo::instance().startRecording();
    {
        serve::CheckpointPool pool(dir, 64 << 20, Durability::Full);
        std::uint64_t generation = 0;
        for (int round = 0; round < 2; ++round) {
            for (std::uint64_t key : session.poolKeys) {
                std::string inflight = pool.inflightPath(key);
                CheckpointImage image;
                image.configFingerprint = ++generation;
                ChunkWriter payload;
                payload.u64(generation);
                payload.str("crashsim-pool");
                image.add("payload", payload);
                writeCheckpoint(inflight, image, Durability::Full);
                if (!pool.promote(key, inflight))
                    fatal("crashsim: reference promote failed");
            }
        }
    }
    session.log = HostIo::instance().stopRecording();
    harvestCheckpoints(session);
    return session;
}

/** Dump recorded op logs as JSONL (the CI failure artifact). */
void
dumpOpLogs(const std::string &path,
           const std::vector<Session> &sessions)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    for (const Session &session : sessions) {
        std::size_t index = 0;
        for (const IoRecord &op : session.log) {
            std::ostringstream line;
            {
                JsonWriter json(line, 0);
                json.beginObject();
                json.member("session", session.name);
                json.member("op", std::int64_t(index));
                json.member("kind", ioOpName(op.kind));
                json.member("path", op.path);
                json.member("path2", op.path2);
                json.member("bytes", std::int64_t(op.data.size()));
                json.member("truncate", op.truncate ? 1 : 0);
                json.endObject();
            }
            out << line.str() << "\n";
            ++index;
        }
    }
}

/**
 * Read a checkpoint with generation fallback, the way recovery does:
 * newest first, rotated predecessor second. @return the raw bytes of
 * the generation that verified, or "" when both are torn/absent —
 * never an image that failed its checksum.
 */
std::string
restoreWithFallback(const std::string &path)
{
    for (const std::string &candidate :
         {path, checkpointPreviousGeneration(path)}) {
        try {
            readCheckpoint(candidate);
            return slurp(candidate);
        } catch (const CheckpointError &) {
            // Detected corruption or absence: fall back.
        }
    }
    return "";
}

/** Map a recorded path into the replay scratch root. */
std::string
mapToScratch(const std::string &path, const std::string &recordRoot,
             const std::string &scratchRoot)
{
    return scratchRoot + path.substr(recordRoot.size());
}

/** Replay one (prefix, variant) and run every recovery invariant. */
void
verifyPrefix(Check &check, const Session &session,
             std::size_t prefix, CrashVariant variant,
             const std::string &recordRoot,
             const std::string &scratchRoot)
{
    std::ostringstream where;
    where << session.name << " prefix " << prefix << "/"
          << session.log.size() << " variant "
          << crashVariantName(variant);

    try {
        replayCrashPrefix(session.log, prefix, variant, recordRoot,
                          scratchRoot);

        // Journal recovery: parseable entries must be reference
        // entries, and every fdatasync-acknowledged entry must have
        // survived — in EVERY variant, including the harshest one.
        if (!session.journalPath.empty()) {
            std::string replayJournal = mapToScratch(
                session.journalPath, recordRoot, scratchRoot);
            std::vector<JournalEntry> loaded =
                RunJournal::load(replayJournal);
            std::size_t acked = ackedSyncs(session.log, prefix,
                                           session.journalPath);
            check.expect(loaded.size() >= acked,
                         where.str() + ": journal holds " +
                             std::to_string(loaded.size()) + " of " +
                             std::to_string(acked) +
                             " acknowledged entries");
            check.expect(loaded.size() <=
                             session.refEntries.size(),
                         where.str() + ": journal grew entries the "
                                       "session never wrote");
            for (std::size_t j = 0;
                 j < loaded.size() &&
                 j < session.refEntries.size();
                 ++j) {
                const JournalEntry &got = loaded[j];
                const JournalEntry &want = session.refEntries[j];
                check.expect(got.bench == want.bench &&
                                 got.variant == want.variant &&
                                 got.config == want.config &&
                                 got.runJson == want.runJson,
                             where.str() +
                                 ": journal entry " +
                                 std::to_string(j) +
                                 " does not match the reference");
            }
        }

        // Checkpoint recovery: whatever reads back through the
        // fallback chain must be an image the session really wrote.
        for (const std::string &ckpt : session.checkpointPaths) {
            std::string bytes = restoreWithFallback(
                mapToScratch(ckpt, recordRoot, scratchRoot));
            if (bytes.empty())
                continue;  // Lost progress: acceptable.
            check.expect(session.imagePayloads.count(bytes) != 0,
                         where.str() + ": restored '" + ckpt +
                             "' is not a recorded image");
        }

        // Pool recovery over the wreck must not throw, and anything
        // it serves must verify as a recorded image.
        if (!session.poolKeys.empty()) {
            serve::CheckpointPool pool(scratchRoot + "/pool",
                                       64 << 20, Durability::Full);
            pool.recover();
            for (std::uint64_t key : session.poolKeys) {
                std::string hit = pool.lookup(key);
                if (hit.empty())
                    continue;
                std::string bytes = restoreWithFallback(hit);
                check.expect(
                    bytes.empty() ||
                        session.imagePayloads.count(bytes) != 0,
                    where.str() + ": pool served a non-recorded "
                                  "image for key " +
                        serve::CheckpointPool::keyName(key));
            }
        }
    } catch (const std::exception &e) {
        check.expect(false, where.str() +
                                ": recovery crashed: " + e.what());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;

    const double scale = args.getDouble("scale", 0.03);
    const double cadenceS = args.getDouble("cadence_s", 0.0003);
    const std::string oplogOut = args.getString("oplog_out", "");
    std::string base = args.getString("state", "");
    if (base.empty())
        base = (fs::temp_directory_path() /
                ("softwatt-crashsim-" + std::to_string(getpid())))
                   .string();

    const std::string recordRoot = base + "/rec";
    const std::string scratchRoot = base + "/replay";
    fs::remove_all(base);
    fs::create_directories(recordRoot);

    std::cout << "recording reference sessions under " << base
              << "\n";
    std::vector<Session> sessions;
    sessions.push_back(recordSweep(recordRoot, scale, cadenceS));
    sessions.push_back(recordPool(recordRoot));
    for (const Session &session : sessions) {
        std::cout << "  " << session.name << ": "
                  << session.log.size() << " host-I/O ops\n";
    }
    if (!oplogOut.empty())
        dumpOpLogs(oplogOut, sessions);

    // Replaying is silent work; recovery legitimately warns about
    // the torn lines and images the crash states contain.
    setLogLevel(LogLevel::Quiet);

    Check check;
    std::size_t replays = 0;
    for (const Session &session : sessions) {
        for (std::size_t prefix = 0; prefix <= session.log.size();
             ++prefix) {
            for (CrashVariant variant : crashVariants) {
                verifyPrefix(check, session, prefix, variant,
                             recordRoot, scratchRoot);
                ++replays;
            }
        }

        // The fully-persisted synced-only state is what a power cut
        // right after the last barrier leaves: it must reproduce the
        // reference byte for byte.
        replayCrashPrefix(session.log, session.log.size(),
                          CrashVariant::SyncedOnly, recordRoot,
                          scratchRoot);
        if (!session.documentPath.empty()) {
            check.expect(
                slurp(mapToScratch(session.documentPath, recordRoot,
                                   scratchRoot)) ==
                    session.documentBytes,
                session.name +
                    ": final synced document differs from the "
                    "reference");
        }
        if (!session.journalPath.empty()) {
            check.expect(
                RunJournal::load(
                    mapToScratch(session.journalPath, recordRoot,
                                 scratchRoot))
                        .size() == session.refEntries.size(),
                session.name +
                    ": final synced journal lost entries");
        }
    }

    setLogLevel(LogLevel::Normal);
    check.expect(replays >= 200,
                 "coverage: only " + std::to_string(replays) +
                     " crash prefixes replayed (need >= 200)");

    std::cout << "replayed " << replays
              << " crash prefixes across " << sessions.size()
              << " sessions: "
              << (check.failures == 0 ? "all invariants held"
                                      : std::to_string(
                                            check.failures) +
                                            " violation(s)")
              << "\n";
    if (check.failures == 0)
        fs::remove_all(base);
    else if (!oplogOut.empty())
        std::cerr << "op log written to " << oplogOut << "\n";
    return check.failures == 0 ? 0 : 1;
}
