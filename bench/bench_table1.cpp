/**
 * @file
 * Table 1: the system model configuration, echoed from the live
 * MachineParams defaults (with any command-line overrides applied).
 */

#include <iostream>

#include "core/experiment.hh"
#include "sim/machine_params.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    MachineParams m;
    m.applyConfig(args);

    std::cout << "=== Table 1: System Model ===\n";
    std::cout << "Instruction Window Size        " << m.instWindowSize
              << "\n";
    std::cout << "Register File                  " << m.intRegs
              << " INT, " << m.fpRegs << " FP\n";
    std::cout << "Load/Store Queue               " << m.lsqSize
              << "\n";
    std::cout << "Fetch Width per Cycle          " << m.fetchWidth
              << "\n";
    std::cout << "Decode Width per Cycle         " << m.decodeWidth
              << "\n";
    std::cout << "Issue Width per Cycle          " << m.issueWidth
              << "\n";
    std::cout << "Commit Width per Cycle         " << m.commitWidth
              << "\n";
    std::cout << "Functional Units               " << m.intAlus
              << " Ints, " << m.fpAlus << " FP\n";
    std::cout << "Branch History Table           " << m.bhtEntries
              << "\n";
    std::cout << "Branch Target Address Table    " << m.btbEntries
              << "\n";
    std::cout << "Return Address Stack           " << m.rasEntries
              << "\n";
    std::cout << "Memory Size                    "
              << m.memorySizeBytes / (1024 * 1024) << " MB\n";
    std::cout << "Instruction Cache              "
              << m.icache.sizeBytes / 1024 << "KB, "
              << m.icache.lineBytes << "B lines, " << m.icache.ways
              << "-way\n";
    std::cout << "Data Cache                     "
              << m.dcache.sizeBytes / 1024 << "KB, "
              << m.dcache.lineBytes << "B lines, " << m.dcache.ways
              << "-way\n";
    std::cout << "Unified L2 Cache               "
              << m.l2cache.sizeBytes / 1024 << "KB, "
              << m.l2cache.lineBytes << "B lines, " << m.l2cache.ways
              << "-way\n";
    std::cout << "Unified TLB (fully assoc)      " << m.tlbEntries
              << " entries\n";
    std::cout << "Feature Size                   " << m.featureSizeUm
              << " um\n";
    std::cout << "Vdd                            " << m.vdd << " V\n";
    std::cout << "Clock                          " << m.freqMhz
              << " MHz\n";
    return 0;
}
