/**
 * @file
 * Validation experiment (paper Section 2): SoftWatt configured as an
 * R10000 reports a maximum CPU power of 25.3 W against the 30 W
 * datasheet value.
 */

#include <iostream>

#include "core/experiment.hh"
#include "power/cpu_power.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    MachineParams machine;
    machine.applyConfig(args);

    CpuPowerModel calibrated(machine, true);
    CpuPowerModel analytical(machine, false);

    std::cout << "=== Validation: maximum R10000 CPU power "
                 "(paper Section 2) ===\n\n";
    std::cout << "Datasheet maximum power          : 30.0 W\n";
    std::cout << "Paper's SoftWatt estimate        : 25.3 W\n";
    std::cout << "This implementation (calibrated) : "
              << calibrated.maxPowerW() << " W\n";
    std::cout << "This implementation (analytical) : "
              << analytical.maxPowerW() << " W\n\n";

    std::cout << "Breakdown (calibrated):\n";
    std::cout << "  core units : " << calibrated.maxUnitPowerW()
              << " W\n";
    std::cout << "  clock      : "
              << calibrated.clockModel().maxPowerW() << " W\n";
    std::cout << "  pads/system: "
              << calibrated.maxPowerW() -
                     calibrated.maxUnitPowerW() -
                     calibrated.clockModel().maxPowerW()
              << " W\n";
    return 0;
}
