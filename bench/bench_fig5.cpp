/**
 * @file
 * Figure 5: the overall power budget with the conventional
 * (unmanaged) disk, averaged over the six benchmarks. The paper's
 * shape: the disk is the single largest consumer (~34%), with the
 * clock and L1 I-cache the dominant CPU-side components.
 */

#include <iostream>

#include "core/report.hh"
#include "core/runner.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    double scale = args.getDouble("scale", 0.5);
    ExperimentSpec spec = ExperimentSpec::fromArgs("fig5", args);
    spec.addSuite(SystemConfig::fromConfig(args), scale);

    std::cout << "=== Figure 5: Overall Power Budget, Conventional "
                 "Disk ===\n(six-benchmark average, scale " << scale
              << ")\n\n";

    ExperimentResult result = runExperiment(spec);
    printPowerBudget(std::cout, "Average power budget",
                     averageBreakdowns(
                         result.conventionalBreakdowns()));
    std::cout << "\nPaper reference: Disk 34%, L1 I-Cache ~22%, "
                 "Clock ~22%, Datapath ~15%, Memory ~6%, others "
                 "<1%.\n";
    return result.exitCode();
}
