/**
 * @file
 * Figure 5: the overall power budget with the conventional
 * (unmanaged) disk, averaged over the six benchmarks. The paper's
 * shape: the disk is the single largest consumer (~34%), with the
 * clock and L1 I-cache the dominant CPU-side components.
 */

#include <iostream>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    Config args = parseArgs(argc, argv);
    double scale = args.getDouble("scale", 0.5);
    SystemConfig config = SystemConfig::fromConfig(args);

    std::cout << "=== Figure 5: Overall Power Budget, Conventional "
                 "Disk ===\n(six-benchmark average, scale " << scale
              << ")\n\n";

    std::vector<PowerBreakdown> conventional;
    for (Benchmark b : allBenchmarks) {
        BenchmarkRun run = runBenchmark(b, config, scale);
        conventional.push_back(run.conventional);
        std::cout << "  [" << run.name << " done: "
                  << run.system->now() << " cycles]\n";
    }
    std::cout << '\n';
    printPowerBudget(std::cout, "Average power budget",
                     averageBreakdowns(conventional));
    std::cout << "\nPaper reference: Disk 34%, L1 I-Cache ~22%, "
                 "Clock ~22%, Datapath ~15%, Memory ~6%, others "
                 "<1%.\n";
    return 0;
}
