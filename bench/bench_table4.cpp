/**
 * @file
 * Table 4: per-benchmark breakdown of kernel computation by service
 * (invocation counts, % kernel cycles, % kernel energy). Paper
 * shape: utlb dominates every benchmark's kernel cycles with an
 * energy share below its cycle share; read is the second-biggest
 * consumer with the opposite skew.
 */

#include <iostream>

#include "core/report.hh"
#include "core/runner.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    double scale = args.getDouble("scale", 0.5);
    ExperimentSpec spec = ExperimentSpec::fromArgs("table4", args);
    spec.addSuite(SystemConfig::fromConfig(args), scale);

    std::cout << "=== Table 4: Kernel Computation by Service ===\n"
                 "(scale " << scale
              << "; invocation counts scale with the workload)\n\n";

    ExperimentResult result = runExperiment(spec);
    for (std::size_t i = 0; i < result.size(); ++i) {
        const BenchmarkRun &run = result.at(i);
        if (!run.hasData()) {
            std::cout << run.name << ": (no data: "
                      << runOutcomeName(run.result.outcome)
                      << ")\n\n";
            continue;
        }
        std::array<ServiceStats, numServices> stats{};
        for (ServiceKind kind : allServices)
            stats[int(kind)] = run.system->kernel().serviceStats(kind);
        printTable4(std::cout, run.name, stats);
        std::cout << '\n';
    }
    std::cout << "Paper shape: utlb leads cycles in every benchmark "
                 "(64-81 %) with energy share below cycle share.\n";
    return result.exitCode();
}
