/**
 * @file
 * Figure 4: jess processor behaviour on the MXS-like superscalar —
 * execution-time breakdown and processor power profile over time
 * (initial disk-idle spike, memory cold-start, then steady state).
 */

#include <iostream>

#include "core/report.hh"
#include "core/runner.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    Cycles sample_window =
        Cycles(args.getInt("sample_window", 250'000));
    double scale = args.getDouble("scale", 1.0);
    // The paper's figure shows jess; the technical report has the
    // other benchmarks — select with bench=<name>.
    std::string bench_name = args.getString("bench", "jess");
    ExperimentSpec spec = ExperimentSpec::fromArgs("fig4", args);
    SystemConfig config = SystemConfig::fromConfig(args);
    config.cpuModel = CpuModel::Superscalar;
    config.sampleWindow = sample_window;
    spec.add(benchmarkByName(bench_name), config, scale);

    std::cout << "=== Figure 4: " << bench_name
              << " on the superscalar (MXS) model ===\n\n";
    ExperimentResult result = runExperiment(spec);
    const BenchmarkRun &run = result.at(0);
    if (!run.hasData()) {
        std::cout << "(no data: " << run.name << " ended "
                  << runOutcomeName(run.result.outcome)
                  << (run.error.empty() ? "" : ": " + run.error)
                  << ")\n";
        return result.exitCode();
    }
    System &sys = *run.system;

    PowerTrace trace = sys.powerTrace();
    printTimeProfile(std::cout,
                     "Execution/power profile over time "
                     "(paper-equivalent seconds)",
                     trace, sys.log(), result.freqHz(),
                     config.timeScale);

    std::cout << "\nRun summary: " << sys.now() << " cycles, IPC "
              << sys.cpu().ipc() << ", branch accuracy "
              << sys.cpu().predictor().accuracy() << "\n";
    return result.exitCode();
}
