/**
 * @file
 * Ablations of the two simulation-methodology choices the paper
 * highlights:
 *
 * 1. Idle fast-forward (Section 3.3): spin-ups/downs can be
 *    fast-forwarded because the idle process's per-cycle behaviour
 *    is workload-independent. Compare a run with fast-forward
 *    against a fully detailed run of the same benchmark.
 *
 * 2. Post-processing power (Section 2): power computed from the
 *    sampled log equals power computed online window by window
 *    (the log loses per-cycle resolution but no energy).
 */

#include <cmath>
#include <iostream>
#include <sstream>

#include "core/runner.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    double scale = args.getDouble("scale", 0.1);
    ExperimentSpec spec = ExperimentSpec::fromArgs("ablation", args);
    SystemConfig ff_config = SystemConfig::fromConfig(args);
    SystemConfig detailed_config = ff_config;
    detailed_config.idleFastForwardAfter =
        ~Cycles(0) / 2;  // effectively never fast-forward
    spec.add(Benchmark::Jess, ff_config, scale, "fast-forward");
    spec.add(Benchmark::Jess, detailed_config, scale, "detailed");

    std::cout << "=== Ablation 1: idle fast-forward vs detailed idle "
                 "===\n(jess, scale " << scale << ")\n\n";
    ExperimentResult result = runExperiment(spec);
    const BenchmarkRun &ff =
        result.run(Benchmark::Jess, "fast-forward");
    const BenchmarkRun &detailed =
        result.run(Benchmark::Jess, "detailed");
    if (!ff.hasData() || !detailed.hasData()) {
        std::cout << "(no data: a jess run ended "
                  << runOutcomeName(
                         (ff.hasData() ? detailed : ff)
                             .result.outcome)
                  << "; skipping the ablation report)\n";
        return result.exitCode();
    }

    double e_ff = ff.breakdown.cpuMemEnergyJ();
    double e_detailed = detailed.breakdown.cpuMemEnergyJ();
    std::cout << "fast-forwarded cycles : "
              << ff.system->fastForwardedCycles() << " of "
              << ff.system->now() << "\n";
    std::cout << "CPU+mem energy, fast-forward : " << e_ff << " J\n";
    std::cout << "CPU+mem energy, detailed     : " << e_detailed
              << " J\n";
    std::cout << "difference                   : "
              << 100.0 * std::abs(e_ff - e_detailed) / e_detailed
              << " %\n";
    std::cout << "idle-mode cycles, fast-forward : "
              << ff.system->totals().get(ExecMode::Idle,
                                         CounterId::Cycles)
              << "\n";
    std::cout << "idle-mode cycles, detailed     : "
              << detailed.system->totals().get(ExecMode::Idle,
                                               CounterId::Cycles)
              << "\n";
    std::cout << "wall-clock note: the detailed run simulates every "
                 "idle cycle; fast-forward skips them.\n\n";

    std::cout << "=== Ablation 2: post-processed log vs in-memory "
                 "totals ===\n\n";
    std::stringstream csv;
    ff.system->log().writeCsv(csv);
    SampleLog loaded;
    if (!SampleLog::readCsv(csv, loaded)) {
        std::cout << "CSV round-trip failed!\n";
        return 1;
    }
    PowerCalculator calc(ff.system->powerModel());
    double from_csv = calc.process(loaded).total.cpuMemEnergyJ();
    std::cout << "energy from in-memory log : " << e_ff << " J\n";
    std::cout << "energy from CSV log       : " << from_csv
              << " J\n";
    std::cout << "difference                : "
              << 100.0 * std::abs(from_csv - e_ff) /
                     (e_ff > 0 ? e_ff : 1)
              << " %\n";
    return result.exitCode();
}
