/**
 * @file
 * Figure 8: average power of key operating-system services (utlb,
 * read, demand_zero, cacheflush) split by hardware component, pooled
 * over the six benchmarks. Paper shape: utlb is the lowest-power
 * service because it exercises neither the data caches nor the LSQ.
 */

#include <iostream>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    Config args = parseArgs(argc, argv);
    double scale = args.getDouble("scale", 0.5);
    SystemConfig config = SystemConfig::fromConfig(args);

    std::cout << "=== Figure 8: Average Power of OS Services ===\n"
                 "(pooled over six benchmarks, scale " << scale
              << ")\n\n";

    std::array<ServiceStats, numServices> pooled{};
    double freq = 200e6;
    for (Benchmark b : allBenchmarks) {
        BenchmarkRun run = runBenchmark(b, config, scale);
        freq = run.system->powerModel().technology().freqHz();
        for (ServiceKind kind : allServices) {
            pooled[int(kind)].merge(
                run.system->kernel().serviceStats(kind));
        }
        std::cout << "  [" << run.name << " done]\n";
    }
    std::cout << '\n';
    printServicePower(std::cout, pooled, freq);
    std::cout << "\nPaper shape: utlb ~3.5 W (lowest), read ~5.5 W, "
                 "demand_zero ~5 W, cacheflush ~4.5 W.\n";
    return 0;
}
