/**
 * @file
 * Figure 8: average power of key operating-system services (utlb,
 * read, demand_zero, cacheflush) split by hardware component, pooled
 * over the six benchmarks. Paper shape: utlb is the lowest-power
 * service because it exercises neither the data caches nor the LSQ.
 */

#include <iostream>

#include "core/report.hh"
#include "core/runner.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    double scale = args.getDouble("scale", 0.5);
    ExperimentSpec spec = ExperimentSpec::fromArgs("fig8", args);
    spec.addSuite(SystemConfig::fromConfig(args), scale);

    std::cout << "=== Figure 8: Average Power of OS Services ===\n"
                 "(pooled over six benchmarks, scale " << scale
              << ")\n\n";

    ExperimentResult result = runExperiment(spec);
    printServicePower(std::cout, result.pooledServiceStats(),
                      result.freqHz());
    std::cout << "\nPaper shape: utlb ~3.5 W (lowest), read ~5.5 W, "
                 "demand_zero ~5 W, cacheflush ~4.5 W.\n";
    return result.exitCode();
}
