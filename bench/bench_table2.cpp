/**
 * @file
 * Table 2: percentage breakdown of cycles and energy across the four
 * software modes for every benchmark, plus the paper's single-issue
 * vs superscalar kernel-share comparison (14.28% -> 21.02% in the
 * paper).
 */

#include <iostream>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace softwatt;

namespace
{

double
kernelSharePct(const PowerBreakdown &b)
{
    double total = double(b.totalCycles());
    double kernel = double(b.cycles[int(ExecMode::KernelInst)]) +
                    double(b.cycles[int(ExecMode::KernelSync)]);
    return total > 0 ? 100.0 * kernel / total : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Config args = parseArgs(argc, argv);
    double scale = args.getDouble("scale", 0.5);
    bool with_inorder = args.getBool("inorder_compare", true);
    SystemConfig config = SystemConfig::fromConfig(args);

    std::cout << "=== Table 2: Cycle/Energy Breakdown per Mode ===\n"
                 "(scale " << scale << ")\n\n";

    std::vector<std::string> names;
    std::vector<PowerBreakdown> breakdowns;
    double kernel_share_ooo = 0;
    for (Benchmark b : allBenchmarks) {
        BenchmarkRun run = runBenchmark(b, config, scale);
        names.push_back(run.name);
        breakdowns.push_back(run.breakdown);
        kernel_share_ooo += kernelSharePct(run.breakdown);
    }
    kernel_share_ooo /= 6.0;
    printTable2(std::cout, names, breakdowns);

    if (with_inorder) {
        SystemConfig io_config = config;
        io_config.cpuModel = CpuModel::InOrder;
        double kernel_share_io = 0;
        for (Benchmark b : allBenchmarks) {
            BenchmarkRun run = runBenchmark(b, io_config, scale);
            kernel_share_io += kernelSharePct(run.breakdown);
        }
        kernel_share_io /= 6.0;
        std::cout << "\nAverage kernel activity (cycles):\n";
        std::cout << "  single-issue : " << kernel_share_io
                  << " %   (paper: 14.28 %)\n";
        std::cout << "  superscalar  : " << kernel_share_ooo
                  << " %   (paper: 21.02 %)\n";
    }
    std::cout << "\nPaper shape: user energy share exceeds its cycle "
                 "share; kernel and idle energy shares fall below "
                 "their cycle shares.\n";
    return 0;
}
