/**
 * @file
 * Table 2: percentage breakdown of cycles and energy across the four
 * software modes for every benchmark, plus the paper's single-issue
 * vs superscalar kernel-share comparison (14.28% -> 21.02% in the
 * paper).
 */

#include <iostream>
#include <vector>

#include "core/report.hh"
#include "core/runner.hh"

using namespace softwatt;

namespace
{

double
kernelSharePct(const PowerBreakdown &b)
{
    double total = double(b.totalCycles());
    double kernel = double(b.cycles[int(ExecMode::KernelInst)]) +
                    double(b.cycles[int(ExecMode::KernelSync)]);
    return total > 0 ? 100.0 * kernel / total : 0;
}

double
averageKernelSharePct(const std::vector<PowerBreakdown> &breakdowns)
{
    double share = 0;
    for (const PowerBreakdown &b : breakdowns)
        share += kernelSharePct(b);
    return breakdowns.empty() ? 0 : share / double(breakdowns.size());
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    double scale = args.getDouble("scale", 0.5);
    bool with_inorder = args.getBool("inorder_compare", true);
    ExperimentSpec spec = ExperimentSpec::fromArgs("table2", args);
    SystemConfig config = SystemConfig::fromConfig(args);
    spec.addSuite(config, scale);
    if (with_inorder) {
        SystemConfig io_config = config;
        io_config.cpuModel = CpuModel::InOrder;
        spec.addSuite(io_config, scale, "inorder");
    }

    std::cout << "=== Table 2: Cycle/Energy Breakdown per Mode ===\n"
                 "(scale " << scale << ")\n\n";

    ExperimentResult result = runExperiment(spec);
    std::vector<PowerBreakdown> breakdowns = result.breakdowns();
    printTable2(std::cout, result.names(), breakdowns);

    if (with_inorder) {
        std::cout << "\nAverage kernel activity (cycles):\n";
        std::cout << "  single-issue : "
                  << averageKernelSharePct(
                         result.breakdowns("inorder"))
                  << " %   (paper: 14.28 %)\n";
        std::cout << "  superscalar  : "
                  << averageKernelSharePct(breakdowns)
                  << " %   (paper: 21.02 %)\n";
    }
    std::cout << "\nPaper shape: user energy share exceeds its cycle "
                 "share; kernel and idle energy shares fall below "
                 "their cycle shares.\n";
    return result.exitCode();
}
