/**
 * @file
 * Table 5: coefficient of deviation of per-invocation service energy
 * pooled over the six benchmarks. Paper shape: services internal to
 * the kernel (utlb, demand_zero, cacheflush) vary far less than the
 * externally-invoked I/O syscalls (read, write, open), which is what
 * licenses trace-based kernel-energy estimation.
 */

#include <algorithm>
#include <iostream>

#include "core/report.hh"
#include "core/runner.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    double scale = args.getDouble("scale", 0.5);
    ExperimentSpec spec = ExperimentSpec::fromArgs("table5", args);
    spec.addSuite(SystemConfig::fromConfig(args), scale);

    std::cout << "=== Table 5: Variation in Per-Invocation Service "
                 "Energy ===\n(pooled over six benchmarks, scale "
              << scale << ")\n\n";

    ExperimentResult result = runExperiment(spec);
    std::array<ServiceStats, numServices> pooled =
        result.pooledServiceStats();
    printTable5(std::cout, pooled, result.freqHz());

    double internal =
        std::max({pooled[int(ServiceKind::Utlb)]
                      .coeffOfDeviationPct(),
                  pooled[int(ServiceKind::DemandZero)]
                      .coeffOfDeviationPct()});
    double external =
        std::min({pooled[int(ServiceKind::Read)]
                      .coeffOfDeviationPct(),
                  pooled[int(ServiceKind::Open)]
                      .coeffOfDeviationPct()});
    std::cout << "\nmax(CoD utlb, demand_zero) = " << internal
              << " %; min(CoD read, open) = " << external
              << " %.\nPaper shape: internal services vary far less "
                 "than I/O syscalls (0.14-2.5 % vs 6.6-10.7 %).\n";
    return result.exitCode();
}
