/**
 * @file
 * Engineering microbenchmarks (google-benchmark): throughput of the
 * simulator's hot paths — cache tag lookups, TLB searches, the
 * stream generator, both CPU models, and the disk state machine.
 *
 * With --simspeed-json=PATH the binary instead runs one full-system
 * benchmark on each CPU model, measures host simulation speed (MIPS:
 * committed instructions per host second), and writes the numbers as
 * a schema-versioned JSON document — the tracked simulation-speed
 * baseline (BENCH_simspeed.json at the repo root).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <utility>

#include "core/experiment.hh"
#include "core/json_writer.hh"
#include "core/system.hh"
#include "cpu/inorder_cpu.hh"
#include "sim/logging.hh"
#include "cpu/stream_gen.hh"
#include "cpu/superscalar_cpu.hh"
#include "disk/disk.hh"
#include "mem/hierarchy.hh"
#include "os/kernel.hh"
#include "sim/counter_sink.hh"
#include "workload/workload.hh"

using namespace softwatt;

namespace
{

void
BM_CacheAccess(benchmark::State &state)
{
    CacheParams params{32 * 1024, 64, 2, 1};
    Cache cache("bm", params);
    Random rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 20) & ~Addr(7), false));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_TlbLookup(benchmark::State &state)
{
    Tlb tlb(64);
    for (int p = 0; p < 64; ++p)
        tlb.insert(1, Addr(p) * 4096);
    Random rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tlb.lookup(1, rng.below(80) * 4096));
    }
}
BENCHMARK(BM_TlbLookup);

void
BM_StreamGen(benchmark::State &state)
{
    StreamSpec spec;
    StreamGen gen(spec, 7);
    MicroOp op;
    for (auto _ : state) {
        gen.next(op);
        benchmark::DoNotOptimize(op);
    }
}
BENCHMARK(BM_StreamGen);

/** Stub kernel serving an infinite stream. */
class BmKernel : public KernelIface
{
  public:
    StreamGen gen{StreamSpec{}, 3};

    FetchOutcome
    fetchNext(MicroOp &op) override
    {
        auto r = gen.next(op);
        op.kernelMapped = true;
        return r;
    }

    void dataTlbMiss(Addr, std::uint32_t,
                     std::vector<MicroOp>) override
    {
    }
    void syscall(const MicroOp &) override {}
    void onCommit(const MicroOp &) override {}
    bool interruptPending() const override { return false; }
    void takeInterrupt(std::vector<MicroOp>) override {}
    void onPipelineEmpty() override {}
    ExecMode currentStreamMode() const override
    {
        return ExecMode::User;
    }
    std::uint32_t privilegedTag() const override { return 0; }
};

void
BM_SuperscalarCycle(benchmark::State &state)
{
    MachineParams machine;
    CounterSink sink;
    CacheHierarchy hierarchy(machine, sink);
    Tlb tlb(64);
    BmKernel kernel;
    SuperscalarCpu cpu(machine, hierarchy, tlb, sink, kernel);
    for (auto _ : state)
        benchmark::DoNotOptimize(cpu.cycle());
    state.counters["IPC"] = cpu.ipc();
}
BENCHMARK(BM_SuperscalarCycle);

void
BM_InOrderCycle(benchmark::State &state)
{
    MachineParams machine;
    CounterSink sink;
    CacheHierarchy hierarchy(machine, sink);
    Tlb tlb(64);
    BmKernel kernel;
    InOrderCpu cpu(machine, hierarchy, tlb, sink, kernel);
    for (auto _ : state)
        benchmark::DoNotOptimize(cpu.cycle());
}
BENCHMARK(BM_InOrderCycle);

void
BM_DiskRequest(benchmark::State &state)
{
    EventQueue queue;
    Disk disk(queue, 200e6, DiskConfig::idleOnly(), 100.0);
    Random rng(1);
    for (auto _ : state) {
        bool done = false;
        disk.submit(rng.below(1 << 20), 4, [&](DiskIoStatus) { done = true; });
        while (!done)
            queue.advanceTo(queue.nextEventTick());
    }
}
BENCHMARK(BM_DiskRequest);

void
BM_WorkloadGen(benchmark::State &state)
{
    auto fresh = [] {
        auto fs = std::make_unique<FileSystem>();
        auto wl = std::make_unique<Workload>(
            benchmarkSpec(Benchmark::Jess));
        wl->registerFiles(*fs);
        return std::pair(std::move(fs), std::move(wl));
    };
    auto [fs, wl] = fresh();
    MicroOp op;
    for (auto _ : state) {
        if (wl->next(op) != FetchOutcome::Op) {
            // Benchmark outlived the workload: restart it.
            std::tie(fs, wl) = fresh();
            wl->next(op);
        }
        benchmark::DoNotOptimize(op);
    }
}
BENCHMARK(BM_WorkloadGen);

/**
 * Full-system simulation speed of one CPU model: host wall-clock
 * MIPS over a short jess run. Host time is inherently
 * non-deterministic, so this is a tracked engineering number, not a
 * simulation result — the JSON records both the host measurement and
 * the deterministic simulated quantities next to it.
 */
void
writeModelSpeed(JsonWriter &json, CpuModel model, const char *name)
{
    SystemConfig config;
    config.cpuModel = model;
    auto start = std::chrono::steady_clock::now();
    BenchmarkRun run = runBenchmark(Benchmark::Jess, config, 0.1);
    auto stop = std::chrono::steady_clock::now();
    double host_s =
        std::chrono::duration<double>(stop - start).count();
    std::uint64_t insts = run.system->cpu().committedInsts();

    json.key(name);
    json.beginObject();
    json.member("host_seconds", host_s);
    json.member("committed_insts", insts);
    json.member("sim_cycles", std::uint64_t(run.system->now()));
    json.member("mips", host_s > 0 ? insts / host_s / 1e6 : 0.0);
    json.member("sim_khz",
                host_s > 0
                    ? double(run.system->now()) / host_s / 1e3
                    : 0.0);
    json.endObject();
}

int
runSimspeedJson(const char *path)
{
    std::ofstream out(path);
    if (!out)
        fatal(msg() << "cannot open " << path << " for writing");
    {
        JsonWriter json(out);
        json.beginObject();
        json.member("schema", "softwatt-bench-simspeed-v1");
        json.member("bench", "jess");
        json.member("scale", 0.1);
        json.key("models");
        json.beginObject();
        writeModelSpeed(json, CpuModel::InOrder, "mipsy");
        writeModelSpeed(json, CpuModel::Superscalar, "mxs");
        json.endObject();
        json.endObject();
    }
    out << '\n';
    return out ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    constexpr const char *kJsonFlag = "--simspeed-json=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], kJsonFlag,
                         std::strlen(kJsonFlag)) == 0)
            return runSimspeedJson(argv[i] + std::strlen(kJsonFlag));
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
