/**
 * @file
 * Engineering microbenchmarks (google-benchmark): throughput of the
 * simulator's hot paths — cache tag lookups, TLB searches, the
 * stream generator, both CPU models, and the disk state machine.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <utility>

#include "cpu/inorder_cpu.hh"
#include "cpu/stream_gen.hh"
#include "cpu/superscalar_cpu.hh"
#include "disk/disk.hh"
#include "mem/hierarchy.hh"
#include "os/kernel.hh"
#include "sim/counter_sink.hh"
#include "workload/workload.hh"

using namespace softwatt;

namespace
{

void
BM_CacheAccess(benchmark::State &state)
{
    CacheParams params{32 * 1024, 64, 2, 1};
    Cache cache("bm", params);
    Random rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 20) & ~Addr(7), false));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_TlbLookup(benchmark::State &state)
{
    Tlb tlb(64);
    for (int p = 0; p < 64; ++p)
        tlb.insert(1, Addr(p) * 4096);
    Random rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tlb.lookup(1, rng.below(80) * 4096));
    }
}
BENCHMARK(BM_TlbLookup);

void
BM_StreamGen(benchmark::State &state)
{
    StreamSpec spec;
    StreamGen gen(spec, 7);
    MicroOp op;
    for (auto _ : state) {
        gen.next(op);
        benchmark::DoNotOptimize(op);
    }
}
BENCHMARK(BM_StreamGen);

/** Stub kernel serving an infinite stream. */
class BmKernel : public KernelIface
{
  public:
    StreamGen gen{StreamSpec{}, 3};

    FetchOutcome
    fetchNext(MicroOp &op) override
    {
        auto r = gen.next(op);
        op.kernelMapped = true;
        return r;
    }

    void dataTlbMiss(Addr, std::uint32_t,
                     std::vector<MicroOp>) override
    {
    }
    void syscall(const MicroOp &) override {}
    void onCommit(const MicroOp &) override {}
    bool interruptPending() const override { return false; }
    void takeInterrupt(std::vector<MicroOp>) override {}
    void onPipelineEmpty() override {}
    ExecMode currentStreamMode() const override
    {
        return ExecMode::User;
    }
    std::uint32_t privilegedTag() const override { return 0; }
};

void
BM_SuperscalarCycle(benchmark::State &state)
{
    MachineParams machine;
    CounterSink sink;
    CacheHierarchy hierarchy(machine, sink);
    Tlb tlb(64);
    BmKernel kernel;
    SuperscalarCpu cpu(machine, hierarchy, tlb, sink, kernel);
    for (auto _ : state)
        benchmark::DoNotOptimize(cpu.cycle());
    state.counters["IPC"] = cpu.ipc();
}
BENCHMARK(BM_SuperscalarCycle);

void
BM_InOrderCycle(benchmark::State &state)
{
    MachineParams machine;
    CounterSink sink;
    CacheHierarchy hierarchy(machine, sink);
    Tlb tlb(64);
    BmKernel kernel;
    InOrderCpu cpu(machine, hierarchy, tlb, sink, kernel);
    for (auto _ : state)
        benchmark::DoNotOptimize(cpu.cycle());
}
BENCHMARK(BM_InOrderCycle);

void
BM_DiskRequest(benchmark::State &state)
{
    EventQueue queue;
    Disk disk(queue, 200e6, DiskConfig::idleOnly(), 100.0);
    Random rng(1);
    for (auto _ : state) {
        bool done = false;
        disk.submit(rng.below(1 << 20), 4, [&](DiskIoStatus) { done = true; });
        while (!done)
            queue.advanceTo(queue.nextEventTick());
    }
}
BENCHMARK(BM_DiskRequest);

void
BM_WorkloadGen(benchmark::State &state)
{
    auto fresh = [] {
        auto fs = std::make_unique<FileSystem>();
        auto wl = std::make_unique<Workload>(
            benchmarkSpec(Benchmark::Jess));
        wl->registerFiles(*fs);
        return std::pair(std::move(fs), std::move(wl));
    };
    auto [fs, wl] = fresh();
    MicroOp op;
    for (auto _ : state) {
        if (wl->next(op) != FetchOutcome::Op) {
            // Benchmark outlived the workload: restart it.
            std::tie(fs, wl) = fresh();
            wl->next(op);
        }
        benchmark::DoNotOptimize(op);
    }
}
BENCHMARK(BM_WorkloadGen);

} // namespace

BENCHMARK_MAIN();
