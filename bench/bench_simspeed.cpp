/**
 * @file
 * Engineering microbenchmarks (google-benchmark): throughput of the
 * simulator's hot paths — cache tag lookups, TLB searches, the
 * stream generator, both CPU models, and the disk state machine.
 *
 * With --simspeed-json=PATH the binary instead runs one full-system
 * benchmark on each CPU model, measures host simulation speed (MIPS:
 * committed instructions per host second), and writes the numbers as
 * a schema-versioned JSON document — the tracked simulation-speed
 * baseline (BENCH_simspeed.json at the repo root).
 *
 * --simspeed-baseline=FILE additionally gates on that committed
 * baseline: if either model's measured MIPS drops more than 10 %
 * below the baseline's, the binary exits 1 (the CI simulation-speed
 * regression gate). Both flags compose — one measurement run is
 * written as the new sample and compared against the baseline.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>

#include "core/experiment.hh"
#include "core/json_writer.hh"
#include "core/system.hh"
#include "cpu/inorder_cpu.hh"
#include "sim/logging.hh"
#include "cpu/stream_gen.hh"
#include "cpu/superscalar_cpu.hh"
#include "disk/disk.hh"
#include "mem/hierarchy.hh"
#include "os/kernel.hh"
#include "sim/counter_sink.hh"
#include "workload/workload.hh"

using namespace softwatt;

namespace
{

void
BM_CacheAccess(benchmark::State &state)
{
    CacheParams params{32 * 1024, 64, 2, 1};
    Cache cache("bm", params);
    Random rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 20) & ~Addr(7), false));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_TlbLookup(benchmark::State &state)
{
    Tlb tlb(64);
    for (int p = 0; p < 64; ++p)
        tlb.insert(1, Addr(p) * 4096);
    Random rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tlb.lookup(1, rng.below(80) * 4096));
    }
}
BENCHMARK(BM_TlbLookup);

void
BM_StreamGen(benchmark::State &state)
{
    StreamSpec spec;
    StreamGen gen(spec, 7);
    MicroOp op;
    for (auto _ : state) {
        gen.next(op);
        benchmark::DoNotOptimize(op);
    }
}
BENCHMARK(BM_StreamGen);

/** Stub kernel serving an infinite stream. */
class BmKernel : public KernelIface
{
  public:
    StreamGen gen{StreamSpec{}, 3};

    FetchOutcome
    fetchNext(MicroOp &op) override
    {
        auto r = gen.next(op);
        op.kernelMapped = true;
        return r;
    }

    void dataTlbMiss(Addr, std::uint32_t,
                     std::vector<MicroOp>) override
    {
    }
    void syscall(const MicroOp &) override {}
    void onCommit(const MicroOp &) override {}
    bool interruptPending() const override { return false; }
    void takeInterrupt(std::vector<MicroOp>) override {}
    void onPipelineEmpty() override {}
    ExecMode currentStreamMode() const override
    {
        return ExecMode::User;
    }
    std::uint32_t privilegedTag() const override { return 0; }
};

void
BM_SuperscalarCycle(benchmark::State &state)
{
    MachineParams machine;
    CounterSink sink;
    CacheHierarchy hierarchy(machine, sink);
    Tlb tlb(64);
    BmKernel kernel;
    SuperscalarCpu cpu(machine, hierarchy, tlb, sink, kernel);
    for (auto _ : state)
        benchmark::DoNotOptimize(cpu.cycle());
    state.counters["IPC"] = cpu.ipc();
}
BENCHMARK(BM_SuperscalarCycle);

void
BM_InOrderCycle(benchmark::State &state)
{
    MachineParams machine;
    CounterSink sink;
    CacheHierarchy hierarchy(machine, sink);
    Tlb tlb(64);
    BmKernel kernel;
    InOrderCpu cpu(machine, hierarchy, tlb, sink, kernel);
    for (auto _ : state)
        benchmark::DoNotOptimize(cpu.cycle());
}
BENCHMARK(BM_InOrderCycle);

void
BM_DiskRequest(benchmark::State &state)
{
    EventQueue queue;
    Disk disk(queue, 200e6, DiskConfig::idleOnly(), 100.0);
    Random rng(1);
    for (auto _ : state) {
        bool done = false;
        disk.submit(rng.below(1 << 20), 4, [&](DiskIoStatus) { done = true; });
        while (!done)
            queue.advanceTo(queue.nextEventTick());
    }
}
BENCHMARK(BM_DiskRequest);

void
BM_WorkloadGen(benchmark::State &state)
{
    auto fresh = [] {
        auto fs = std::make_unique<FileSystem>();
        auto wl = std::make_unique<Workload>(
            benchmarkSpec(Benchmark::Jess));
        wl->registerFiles(*fs);
        return std::pair(std::move(fs), std::move(wl));
    };
    auto [fs, wl] = fresh();
    MicroOp op;
    for (auto _ : state) {
        if (wl->next(op) != FetchOutcome::Op) {
            // Benchmark outlived the workload: restart it.
            std::tie(fs, wl) = fresh();
            wl->next(op);
        }
        benchmark::DoNotOptimize(op);
    }
}
BENCHMARK(BM_WorkloadGen);

/**
 * Full-system simulation speed of one CPU model: host wall-clock
 * MIPS over a short jess run. Host time is inherently
 * non-deterministic, so this is a tracked engineering number, not a
 * simulation result — the JSON records both the host measurement and
 * the deterministic simulated quantities next to it.
 */
struct ModelSpeed
{
    double hostSeconds = 0;
    std::uint64_t committedInsts = 0;
    std::uint64_t simCycles = 0;
    double mips = 0;
};

ModelSpeed
measureModelSpeed(CpuModel model)
{
    SystemConfig config;
    config.cpuModel = model;
    auto start = std::chrono::steady_clock::now();
    BenchmarkRun run = runBenchmark(Benchmark::Jess, config, 0.1);
    auto stop = std::chrono::steady_clock::now();

    ModelSpeed speed;
    speed.hostSeconds =
        std::chrono::duration<double>(stop - start).count();
    speed.committedInsts = run.system->cpu().committedInsts();
    speed.simCycles = std::uint64_t(run.system->now());
    speed.mips = speed.hostSeconds > 0
                     ? speed.committedInsts / speed.hostSeconds / 1e6
                     : 0.0;
    return speed;
}

void
writeModelSpeed(JsonWriter &json, const ModelSpeed &speed,
                const char *name)
{
    json.key(name);
    json.beginObject();
    json.member("host_seconds", speed.hostSeconds);
    json.member("committed_insts", speed.committedInsts);
    json.member("sim_cycles", speed.simCycles);
    json.member("mips", speed.mips);
    json.member("sim_khz",
                speed.hostSeconds > 0
                    ? double(speed.simCycles) / speed.hostSeconds /
                          1e3
                    : 0.0);
    json.endObject();
}

int
writeSimspeedJson(const char *path, const ModelSpeed &mipsy,
                  const ModelSpeed &mxs)
{
    std::ofstream out(path);
    if (!out)
        fatal(msg() << "cannot open " << path << " for writing");
    {
        JsonWriter json(out);
        json.beginObject();
        json.member("schema", "softwatt-bench-simspeed-v1");
        json.member("bench", "jess");
        json.member("scale", 0.1);
        json.key("models");
        json.beginObject();
        writeModelSpeed(json, mipsy, "mipsy");
        writeModelSpeed(json, mxs, "mxs");
        json.endObject();
        json.endObject();
    }
    out << '\n';
    return out ? 0 : 1;
}

/**
 * Pull "<model>": {... "mips": <value> ...} out of a baseline
 * document with a plain string scan — the schema is our own v1
 * writer's, so a JSON parser would be overkill. Returns false when
 * the model or its mips field is absent.
 */
bool
baselineMips(const std::string &doc, const char *model,
             double &out_mips)
{
    std::size_t at = doc.find("\"" + std::string(model) + "\"");
    if (at == std::string::npos)
        return false;
    std::size_t mips = doc.find("\"mips\":", at);
    if (mips == std::string::npos)
        return false;
    out_mips = std::strtod(doc.c_str() + mips + 7, nullptr);
    return out_mips > 0;
}

/** Fractional MIPS drop (>0 means slower) vs the baseline. */
constexpr double kMaxMipsDrop = 0.10;

int
gateAgainstBaseline(const char *path, const ModelSpeed &mipsy,
                    const ModelSpeed &mxs)
{
    std::ifstream in(path);
    if (!in)
        fatal(msg() << "cannot read simspeed baseline " << path);
    std::string doc((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());

    int failures = 0;
    const std::pair<const char *, const ModelSpeed *> models[] = {
        {"mipsy", &mipsy}, {"mxs", &mxs}};
    for (const auto &[name, measured] : models) {
        double base = 0;
        if (!baselineMips(doc, name, base)) {
            std::fprintf(stderr,
                         "simspeed gate: no '%s' mips in %s\n", name,
                         path);
            ++failures;
            continue;
        }
        double drop = (base - measured->mips) / base;
        std::fprintf(stderr,
                     "simspeed gate: %-5s %.3f MIPS vs baseline "
                     "%.3f (%+.1f%%)\n",
                     name, measured->mips, base, -drop * 100);
        if (drop > kMaxMipsDrop) {
            std::fprintf(stderr,
                         "simspeed gate: %s regressed more than "
                         "%.0f%%\n",
                         name, kMaxMipsDrop * 100);
            ++failures;
        }
    }
    return failures > 0 ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    constexpr const char *kJsonFlag = "--simspeed-json=";
    constexpr const char *kBaselineFlag = "--simspeed-baseline=";
    const char *json_path = nullptr;
    const char *baseline_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], kJsonFlag,
                         std::strlen(kJsonFlag)) == 0)
            json_path = argv[i] + std::strlen(kJsonFlag);
        else if (std::strncmp(argv[i], kBaselineFlag,
                              std::strlen(kBaselineFlag)) == 0)
            baseline_path = argv[i] + std::strlen(kBaselineFlag);
    }
    if (json_path || baseline_path) {
        ModelSpeed mipsy = measureModelSpeed(CpuModel::InOrder);
        ModelSpeed mxs = measureModelSpeed(CpuModel::Superscalar);
        int status = 0;
        if (json_path)
            status = writeSimspeedJson(json_path, mipsy, mxs);
        if (status == 0 && baseline_path)
            status = gateAgainstBaseline(baseline_path, mipsy, mxs);
        return status;
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
