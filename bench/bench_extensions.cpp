/**
 * @file
 * Extension experiments suggested by the paper's conclusions:
 *
 * 1. Halt-on-idle: "this energy consumption can be reduced by
 *    transitioning the CPU and the memory-subsystem to a low-power
 *    mode or by even halting the processor, instead of executing the
 *    idle-process" — quantifies the saving per benchmark (the paper
 *    attributes over 5% of system energy to the idle process).
 *
 * 2. Conditional clocking ablation: how much of the power estimate
 *    depends on SoftWatt's conditional-clocking assumption, versus a
 *    naive always-clocked model.
 *
 * 3. Peak vs average power: the profile-derived peak the paper notes
 *    the tool can report for thermal design.
 */

#include <iomanip>
#include <iostream>

#include "core/runner.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    double scale = args.getDouble("scale", 0.3);
    ExperimentSpec spec =
        ExperimentSpec::fromArgs("extensions", args);
    SystemConfig busy_cfg = SystemConfig::fromConfig(args);
    SystemConfig halt_cfg = busy_cfg;
    halt_cfg.kernelParams.haltOnIdle = true;
    spec.addSuite(busy_cfg, scale, "busy");
    spec.addSuite(halt_cfg, scale, "halt");

    std::cout << "=== Extension 1: halting the processor instead of "
                 "busy-wait idling ===\n(scale " << scale << ")\n\n";
    ExperimentResult result = runExperiment(spec);

    std::cout << std::left << std::setw(10) << "bench" << std::right
              << std::setw(14) << "idle E (J)" << std::setw(14)
              << "halted (J)" << std::setw(14) << "saved (%sys)"
              << '\n';
    for (Benchmark b : allBenchmarks) {
        const BenchmarkRun &busy = result.run(b, "busy");
        const BenchmarkRun &halted = result.run(b, "halt");
        if (!busy.hasData() || !halted.hasData()) {
            std::cout << std::left << std::setw(10)
                      << benchmarkName(b) << "(no data)" << '\n';
            continue;
        }

        double busy_idle =
            busy.breakdown.modeEnergyJ(ExecMode::Idle);
        double halt_idle =
            halted.breakdown.modeEnergyJ(ExecMode::Idle);
        double saved_pct =
            100.0 * (busy.breakdown.cpuMemEnergyJ() -
                     halted.breakdown.cpuMemEnergyJ()) /
            busy.breakdown.cpuMemEnergyJ();
        std::cout << std::left << std::setw(10) << benchmarkName(b)
                  << std::right << std::setw(14) << std::scientific
                  << std::setprecision(3) << busy_idle
                  << std::setw(14) << halt_idle << std::setw(13)
                  << std::fixed << std::setprecision(2) << saved_pct
                  << " %" << '\n';
    }

    std::cout << "\n=== Extension 2: conditional clocking ablation "
                 "===\n\n";
    const BenchmarkRun &run = result.run(Benchmark::Jess, "busy");
    if (!run.hasData()) {
        std::cout << "(no data: jess/busy ended "
                  << runOutcomeName(run.result.outcome) << ")\n";
        return result.exitCode();
    }
    PowerCalculator gated(run.system->powerModel(), true);
    PowerCalculator always(run.system->powerModel(), false);
    double e_gated =
        gated.process(run.system->log()).total.cpuMemEnergyJ();
    double e_always =
        always.process(run.system->log()).total.cpuMemEnergyJ();
    std::cout << "jess CPU+mem energy, conditional clocking : "
              << e_gated << " J\n";
    std::cout << "jess CPU+mem energy, always clocked       : "
              << e_always << " J\n";
    std::cout << "conditional clocking saves                : "
              << 100.0 * (e_always - e_gated) / e_always << " %\n";

    std::cout << "\n=== Extension 3: peak vs average power (thermal "
                 "design point) ===\n\n";
    std::cout << std::left << std::setw(10) << "bench" << std::right
              << std::setw(12) << "avg (W)" << std::setw(12)
              << "peak (W)" << '\n';
    for (Benchmark b : allBenchmarks) {
        const BenchmarkRun &r = result.run(b, "busy");
        if (!r.hasData()) {
            std::cout << std::left << std::setw(10)
                      << benchmarkName(b) << "(no data)" << '\n';
            continue;
        }
        PowerTrace trace = r.system->powerTrace();
        double avg = r.breakdown.cpuMemEnergyJ() /
                     r.breakdown.seconds();
        std::cout << std::left << std::setw(10) << benchmarkName(b)
                  << std::right << std::setw(12) << std::fixed
                  << std::setprecision(2) << avg << std::setw(12)
                  << peakWindowPowerW(trace) << '\n';
    }
    return result.exitCode();
}
