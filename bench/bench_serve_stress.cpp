/**
 * @file
 * Stress harness for the softwatt-serve daemon (DESIGN.md §4j).
 *
 * Forks the daemon as a child process and batters it in three
 * phases:
 *
 *  1. Flood: many client threads submit hundreds of concurrent
 *     requests over a handful of distinct specs, with bounded
 *     retries against `overloaded` rejections; a fraction of the
 *     clients disconnect without reading their responses, so the
 *     daemon must survive writing to vanished peers.
 *  2. Crash: with a long run in flight, the daemon is SIGKILL'd —
 *     no drain, no flush beyond the journal's own per-line flush —
 *     and restarted on the same state directory. Every spec answered
 *     in phase 1 must be re-answered from the journal byte-
 *     identically, and the in-flight job's orphaned warm-up
 *     checkpoints must be recovered into the pool.
 *  3. Reference: each distinct spec's served document is compared
 *     byte for byte against a cold in-process run at the same
 *     autosave cadence (retries are disabled service-wide, so every
 *     served document is a first-attempt run).
 *
 * Exit status 0 only when every check passed.
 *
 * Keys: requests= (default 256), clients= (default 16),
 * scale_base= (default 0.02), warm_s= (default 0.0001), seed=,
 * state= (default a fresh directory under the system temp path).
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <iostream>
#include <map>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <sys/types.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/experiment.hh"
#include "core/runner.hh"
#include "serve/client.hh"
#include "serve/executor.hh"
#include "serve/server.hh"
#include "sim/logging.hh"
#include "sim/signals.hh"

using namespace softwatt;
namespace fs = std::filesystem;

namespace
{

/** Fork a child that runs the daemon until signalled. */
pid_t
spawnDaemon(const serve::ServeOptions &options)
{
    pid_t pid = fork();
    if (pid != 0)
        return pid;
    // Child: the daemon owns this process. _exit keeps the parent's
    // stdio buffers and atexit hooks from running twice.
    serve::ServeServer server(options);
    std::string error;
    if (!server.start(error)) {
        std::cerr << "daemon: " << error << "\n";
        _exit(1);
    }
    CancelToken stop;
    SignalGuard guard(stop);
    server.serveUntil(stop);
    _exit(0);
}

/** Connect with retries while the daemon binds its socket. */
bool
connectWithRetry(serve::ServeClient &client,
                 const std::string &socket_path)
{
    std::string error;
    for (int attempt = 0; attempt < 100; ++attempt) {
        if (client.connect(socket_path, error))
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::cerr << "connect: " << error << "\n";
    return false;
}

/** One call with bounded retries against overload/shutdown. */
bool
callWithRetry(const std::string &socket_path,
              const serve::ServeRequest &request,
              serve::ServeResponse &response)
{
    std::string error;
    for (int attempt = 0; attempt < 200; ++attempt) {
        serve::ServeClient client;
        if (!client.connect(socket_path, error)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
            continue;
        }
        if (!client.call(request, response, error))
            continue;
        if (response.status != serve::statusOverloaded &&
            response.status != serve::statusShuttingDown)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    return false;
}

struct Check
{
    int failures = 0;

    void
    expect(bool ok, const std::string &what)
    {
        if (ok)
            return;
        ++failures;
        std::cerr << "FAIL: " << what << "\n";
    }
};

} // namespace

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;

    const std::int64_t requests = args.getInt("requests", 256);
    const std::int64_t clientCount = args.getInt("clients", 16);
    const double scaleBase = args.getDouble("scale_base", 0.02);
    const double warmS = args.getDouble("warm_s", 0.0001);
    const std::uint64_t seed =
        std::uint64_t(args.getInt("seed", 1234));
    std::string state = args.getString("state", "");
    if (state.empty())
        state = (fs::temp_directory_path() /
                 ("softwatt-serve-stress-" +
                  std::to_string(getpid())))
                    .string();

    fs::remove_all(state);
    fs::create_directories(state);

    serve::ServeOptions options;
    options.socketPath = state + "/serve.sock";
    options.statePath = state + "/daemon";
    options.jobs = 2;
    options.queueMax = 8;
    options.warmS = warmS;
    options.retries = 0;  // Reference phase expects first attempts.

    // A handful of distinct specs; every request maps onto one of
    // them, so the flood exercises journal hits and warm starts, not
    // just raw execution.
    std::vector<std::string> specs;
    for (int i = 0; i < 4; ++i) {
        std::ostringstream spec;
        spec << "bench=jess scale=" << scaleBase * (1 + i);
        specs.push_back(spec.str());
    }

    Check check;

    // ---------------------------------------------------------
    std::cout << "phase 1: flood (" << requests << " requests, "
              << clientCount << " clients)\n";
    pid_t daemon = spawnDaemon(options);
    check.expect(daemon > 0, "fork daemon");
    {
        serve::ServeClient probe;
        check.expect(connectWithRetry(probe, options.socketPath),
                     "daemon came up");
    }

    std::mutex documentsMutex;
    std::map<std::string, std::string> documents;  // spec -> bytes
    std::atomic<int> answered{0};
    std::atomic<int> dropped{0};
    std::atomic<int> mismatched{0};
    std::atomic<int> failed{0};

    std::vector<std::thread> clients;
    const std::int64_t perClient =
        (requests + clientCount - 1) / clientCount;
    for (std::int64_t c = 0; c < clientCount; ++c) {
        clients.emplace_back([&, c] {
            std::mt19937_64 rng(seed + std::uint64_t(c));
            // One in four clients is rude: it pipelines all its
            // requests and disconnects without reading a byte.
            const bool rude = (c % 4) == 3;
            if (rude) {
                serve::ServeClient client;
                if (!connectWithRetry(client, options.socketPath))
                    return;
                for (std::int64_t i = 0; i < perClient; ++i) {
                    serve::ServeRequest request;
                    request.client = "rude-" + std::to_string(c);
                    request.id = "job-" + std::to_string(i);
                    request.spec =
                        specs[rng() % specs.size()];
                    client.send(request);
                }
                client.disconnect();
                dropped.fetch_add(int(perClient));
                return;
            }
            for (std::int64_t i = 0; i < perClient; ++i) {
                serve::ServeRequest request;
                request.client = "client-" + std::to_string(c);
                request.id = "job-" + std::to_string(i);
                request.spec = specs[rng() % specs.size()];
                serve::ServeResponse response;
                if (!callWithRetry(options.socketPath, request,
                                   response) ||
                    response.status != serve::statusOk) {
                    failed.fetch_add(1);
                    continue;
                }
                answered.fetch_add(1);
                std::lock_guard<std::mutex> lock(documentsMutex);
                auto [it, inserted] = documents.emplace(
                    request.spec, response.document);
                if (!inserted && it->second != response.document)
                    mismatched.fetch_add(1);
            }
        });
    }
    for (std::thread &thread : clients)
        thread.join();

    std::cout << "  answered " << answered.load() << ", dropped "
              << dropped.load() << " (rude clients), failed "
              << failed.load() << "\n";
    check.expect(failed.load() == 0, "every polite request answered");
    check.expect(mismatched.load() == 0,
                 "same spec always yields the same bytes");
    check.expect(documents.size() == specs.size(),
                 "every distinct spec produced a document");

    // ---------------------------------------------------------
    std::cout << "phase 2: SIGKILL mid-flight, restart, replay\n";
    {
        // Park a long job in flight so the kill tears real work.
        serve::ServeClient slow;
        if (connectWithRetry(slow, options.socketPath)) {
            serve::ServeRequest request;
            request.client = "victim";
            request.id = "long-job";
            request.spec = "bench=jess scale=5.0";
            slow.send(request);
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(300));
        kill(daemon, SIGKILL);
        int status = 0;
        waitpid(daemon, &status, 0);
        check.expect(WIFSIGNALED(status) &&
                         WTERMSIG(status) == SIGKILL,
                     "daemon died from SIGKILL");
    }
    // The socket file is stale (the kill skipped cleanup); the
    // restarted daemon rebinds it.
    daemon = spawnDaemon(options);
    check.expect(daemon > 0, "fork restarted daemon");

    int replayed = 0;
    for (const auto &[spec, bytes] : documents) {
        serve::ServeRequest request;
        request.client = "replayer";
        request.id = "replay-" + std::to_string(replayed);
        request.spec = spec;
        serve::ServeResponse response;
        if (!callWithRetry(options.socketPath, request, response)) {
            check.expect(false, "replay call for " + spec);
            continue;
        }
        check.expect(response.status == serve::statusOk,
                     "replay status for " + spec + ": " +
                         response.error);
        check.expect(response.servedFrom == "journal",
                     "replay of " + spec + " came from the journal");
        check.expect(response.document == bytes,
                     "replay of " + spec + " is byte-identical");
        ++replayed;
    }
    std::cout << "  replayed " << replayed << " specs from the "
              << "journal after SIGKILL\n";

    // ---------------------------------------------------------
    std::cout << "phase 3: byte-identity against cold references\n";
    {
        ScopedErrorHandler firewall(throwingErrorHandler);
        std::string scratchDir = state + "/scratch";
        fs::create_directories(scratchDir);
        serve::CheckpointPool scratch(scratchDir, 0);
        serve::ServeExecOptions policy;
        policy.pool = &scratch;
        policy.warmEveryS = warmS;
        CancelToken token;
        for (const auto &[spec, bytes] : documents) {
            RunSpec runSpec;
            std::string bench, error;
            if (!serve::parseServeSpec(spec, runSpec, bench,
                                       error)) {
                check.expect(false, "re-parse " + spec);
                continue;
            }
            serve::ServeExecResult cold =
                serve::executeServeSpec(runSpec, policy, token);
            std::ostringstream document;
            writeExperimentDocument(document, "serve", false,
                                    {cold.runJson});
            check.expect(document.str() == bytes,
                         "cold reference matches served bytes for " +
                             spec);
        }
    }

    // ---------------------------------------------------------
    // Graceful drain of the restarted daemon.
    kill(daemon, SIGTERM);
    int status = 0;
    waitpid(daemon, &status, 0);
    check.expect(WIFEXITED(status) && WEXITSTATUS(status) == 0,
                 "restarted daemon drained cleanly");

    fs::remove_all(state);

    if (check.failures == 0) {
        std::cout << "serve stress: PASS\n";
        return 0;
    }
    std::cout << "serve stress: " << check.failures
              << " check(s) FAILED\n";
    return 1;
}
