/**
 * @file
 * Figure 7: the power budget with the IDLE-capable low-power disk:
 * the disk's share drops (34% -> 23% in the paper) and the power
 * hotspot shifts to the clock network and the L1 I-cache.
 */

#include <iostream>

#include "core/report.hh"
#include "core/runner.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    double scale = args.getDouble("scale", 0.5);
    ExperimentSpec spec = ExperimentSpec::fromArgs("fig7", args);
    SystemConfig config = SystemConfig::fromConfig(args);
    config.diskConfig = DiskConfig::idleOnly();
    spec.addSuite(config, scale);

    std::cout << "=== Figure 7: Power Budget, IDLE-capable Disk ===\n"
                 "(six-benchmark average, scale " << scale
              << ")\n\n";

    ExperimentResult result = runExperiment(spec);
    PowerBreakdown avg_managed =
        averageBreakdowns(result.breakdowns());
    PowerBreakdown avg_conv =
        averageBreakdowns(result.conventionalBreakdowns());
    printPowerBudget(std::cout, "With IDLE-capable disk",
                     avg_managed);
    std::cout << '\n';
    std::cout << "Disk share: "
              << avg_conv.componentSharePct(Component::Disk)
              << " % (conventional) -> "
              << avg_managed.componentSharePct(Component::Disk)
              << " % (IDLE-capable).  Paper: 34 % -> 23 %.\n";
    return result.exitCode();
}
