/**
 * @file
 * Figure 7: the power budget with the IDLE-capable low-power disk:
 * the disk's share drops (34% -> 23% in the paper) and the power
 * hotspot shifts to the clock network and the L1 I-cache.
 */

#include <iostream>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    Config args = parseArgs(argc, argv);
    double scale = args.getDouble("scale", 0.5);
    SystemConfig config = SystemConfig::fromConfig(args);
    config.diskConfig = DiskConfig::idleOnly();

    std::cout << "=== Figure 7: Power Budget, IDLE-capable Disk ===\n"
                 "(six-benchmark average, scale " << scale
              << ")\n\n";

    std::vector<PowerBreakdown> managed, conventional;
    for (Benchmark b : allBenchmarks) {
        BenchmarkRun run = runBenchmark(b, config, scale);
        managed.push_back(run.breakdown);
        conventional.push_back(run.conventional);
        std::cout << "  [" << run.name << " done]\n";
    }
    std::cout << '\n';
    PowerBreakdown avg_managed = averageBreakdowns(managed);
    PowerBreakdown avg_conv = averageBreakdowns(conventional);
    printPowerBudget(std::cout, "With IDLE-capable disk",
                     avg_managed);
    std::cout << '\n';
    std::cout << "Disk share: "
              << avg_conv.componentSharePct(Component::Disk)
              << " % (conventional) -> "
              << avg_managed.componentSharePct(Component::Disk)
              << " % (IDLE-capable).  Paper: 34 % -> 23 %.\n";
    return 0;
}
