/**
 * @file
 * Table 3: L1 cache references per cycle per mode for every
 * benchmark, plus the Section 3.2 ALU-use-per-cycle companion.
 * Paper shape: user iL1 ~2.0, kernel ~1.1, sync ~1.5, idle ~0.8;
 * ALU use 0.76 / 0.42 / 0.59 / 0.26.
 */

#include <iostream>
#include <vector>

#include "core/report.hh"
#include "core/runner.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    double scale = args.getDouble("scale", 0.5);
    ExperimentSpec spec = ExperimentSpec::fromArgs("table3", args);
    spec.addSuite(SystemConfig::fromConfig(args), scale);

    std::cout << "=== Table 3: Cache References Per Cycle ===\n"
                 "(scale " << scale << ")\n\n";

    ExperimentResult result = runExperiment(spec);
    std::vector<std::string> names = result.names();
    std::vector<CounterBank> totals = result.counterTotals();
    printTable3(std::cout, names, totals);
    std::cout << '\n';
    printAluUse(std::cout, names, totals);
    std::cout << "\nPaper reference (averages): iL1 user ~2.0, "
                 "kernel ~1.1, sync ~1.55, idle ~0.8; dL1 user ~0.62, "
                 "kernel ~0.2, sync ~0.17, idle ~0.37; ALU 0.76 / "
                 "0.42 / 0.59 / 0.26.\n";
    return result.exitCode();
}
