/**
 * @file
 * Table 3: L1 cache references per cycle per mode for every
 * benchmark, plus the Section 3.2 ALU-use-per-cycle companion.
 * Paper shape: user iL1 ~2.0, kernel ~1.1, sync ~1.5, idle ~0.8;
 * ALU use 0.76 / 0.42 / 0.59 / 0.26.
 */

#include <iostream>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    Config args = parseArgs(argc, argv);
    double scale = args.getDouble("scale", 0.5);
    SystemConfig config = SystemConfig::fromConfig(args);

    std::cout << "=== Table 3: Cache References Per Cycle ===\n"
                 "(scale " << scale << ")\n\n";

    std::vector<std::string> names;
    std::vector<CounterBank> totals;
    for (Benchmark b : allBenchmarks) {
        BenchmarkRun run = runBenchmark(b, config, scale);
        names.push_back(run.name);
        totals.push_back(run.system->totals());
    }
    printTable3(std::cout, names, totals);
    std::cout << '\n';
    printAluUse(std::cout, names, totals);
    std::cout << "\nPaper reference (averages): iL1 user ~2.0, "
                 "kernel ~1.1, sync ~1.55, idle ~0.8; dL1 user ~0.62, "
                 "kernel ~0.2, sync ~0.17, idle ~0.37; ALU 0.76 / "
                 "0.42 / 0.59 / 0.26.\n";
    return 0;
}
