/**
 * @file
 * Figure 3: jess memory-subsystem behaviour on the Mipsy-like
 * in-order model — execution-time breakdown over time, the
 * memory-subsystem power profile, and the single-issue processor
 * power comparison (memory subsystem > 2x datapath).
 */

#include <iostream>

#include "core/report.hh"
#include "core/runner.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    Cycles sample_window =
        Cycles(args.getInt("sample_window", 250'000));
    double scale = args.getDouble("scale", 1.0);
    // The paper's figure shows jess; the technical report has the
    // other benchmarks — select with bench=<name>.
    std::string bench_name = args.getString("bench", "jess");
    ExperimentSpec spec = ExperimentSpec::fromArgs("fig3", args);
    SystemConfig config = SystemConfig::fromConfig(args);
    config.cpuModel = CpuModel::InOrder;
    config.sampleWindow = sample_window;
    spec.add(benchmarkByName(bench_name), config, scale);

    std::cout << "=== Figure 3: " << bench_name
              << " on the single-issue (Mipsy) model ===\n\n";
    ExperimentResult result = runExperiment(spec);
    const BenchmarkRun &run = result.at(0);
    if (!run.hasData()) {
        std::cout << "(no data: " << run.name << " ended "
                  << runOutcomeName(run.result.outcome)
                  << (run.error.empty() ? "" : ": " + run.error)
                  << ")\n";
        return result.exitCode();
    }
    System &sys = *run.system;
    double freq = result.freqHz();

    PowerTrace trace = sys.powerTrace();
    printTimeProfile(std::cout,
                     "Execution/power profile over time "
                     "(paper-equivalent seconds)",
                     trace, sys.log(), freq, config.timeScale);

    // The paper's headline observation for single-issue machines.
    const PowerBreakdown &b = run.breakdown;
    double datapath = b.componentAvgPowerW(Component::Datapath);
    double memory_subsystem =
        b.componentAvgPowerW(Component::L1ICache) +
        b.componentAvgPowerW(Component::L1DCache) +
        b.componentAvgPowerW(Component::L2ICache) +
        b.componentAvgPowerW(Component::L2DCache) +
        b.componentAvgPowerW(Component::Memory);
    std::cout << "\nAverage power, single-issue configuration:\n";
    std::cout << "  processor datapath : " << datapath << " W\n";
    std::cout << "  memory subsystem   : " << memory_subsystem
              << " W (" << memory_subsystem / datapath
              << "x the datapath; paper: > 2x)\n";
    return result.exitCode();
}
